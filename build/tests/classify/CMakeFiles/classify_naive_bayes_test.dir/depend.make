# Empty dependencies file for classify_naive_bayes_test.
# This may be replaced when dependencies are built.
