# Empty dependencies file for classify_kd_tree_test.
# This may be replaced when dependencies are built.
