file(REMOVE_RECURSE
  "CMakeFiles/classify_kd_tree_test.dir/kd_tree_test.cc.o"
  "CMakeFiles/classify_kd_tree_test.dir/kd_tree_test.cc.o.d"
  "classify_kd_tree_test"
  "classify_kd_tree_test.pdb"
  "classify_kd_tree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/classify_kd_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
