
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/classify/one_r_test.cc" "tests/classify/CMakeFiles/classify_one_r_test.dir/one_r_test.cc.o" "gcc" "tests/classify/CMakeFiles/classify_one_r_test.dir/one_r_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/assoc/CMakeFiles/dmt_assoc.dir/DependInfo.cmake"
  "/root/repo/build/src/gen/CMakeFiles/dmt_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/dmt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/tseries/CMakeFiles/dmt_tseries.dir/DependInfo.cmake"
  "/root/repo/build/src/seq/CMakeFiles/dmt_seq.dir/DependInfo.cmake"
  "/root/repo/build/src/tree/CMakeFiles/dmt_tree.dir/DependInfo.cmake"
  "/root/repo/build/src/classify/CMakeFiles/dmt_classify.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/dmt_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/dmt_eval.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
