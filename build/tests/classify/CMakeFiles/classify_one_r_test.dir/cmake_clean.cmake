file(REMOVE_RECURSE
  "CMakeFiles/classify_one_r_test.dir/one_r_test.cc.o"
  "CMakeFiles/classify_one_r_test.dir/one_r_test.cc.o.d"
  "classify_one_r_test"
  "classify_one_r_test.pdb"
  "classify_one_r_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/classify_one_r_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
