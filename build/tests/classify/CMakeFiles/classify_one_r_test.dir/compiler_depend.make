# Empty compiler generated dependencies file for classify_one_r_test.
# This may be replaced when dependencies are built.
