add_test([=[BasketPipelineTest.FullPipelineOnQuestWorkload]=]  /root/repo/build/tests/integration/integration_basket_pipeline_test [==[--gtest_filter=BasketPipelineTest.FullPipelineOnQuestWorkload]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[BasketPipelineTest.FullPipelineOnQuestWorkload]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests/integration SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==])
set(  integration_basket_pipeline_test_TESTS BasketPipelineTest.FullPipelineOnQuestWorkload)
