file(REMOVE_RECURSE
  "CMakeFiles/integration_clustering_pipeline_test.dir/clustering_pipeline_test.cc.o"
  "CMakeFiles/integration_clustering_pipeline_test.dir/clustering_pipeline_test.cc.o.d"
  "integration_clustering_pipeline_test"
  "integration_clustering_pipeline_test.pdb"
  "integration_clustering_pipeline_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_clustering_pipeline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
