# Empty dependencies file for integration_clustering_pipeline_test.
# This may be replaced when dependencies are built.
