# Empty dependencies file for seq_gsp_test.
# This may be replaced when dependencies are built.
