file(REMOVE_RECURSE
  "CMakeFiles/seq_gsp_test.dir/gsp_test.cc.o"
  "CMakeFiles/seq_gsp_test.dir/gsp_test.cc.o.d"
  "seq_gsp_test"
  "seq_gsp_test.pdb"
  "seq_gsp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seq_gsp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
