# Empty compiler generated dependencies file for seq_gsp_property_test.
# This may be replaced when dependencies are built.
