# CMake generated Testfile for 
# Source directory: /root/repo/tests/seq
# Build directory: /root/repo/build/tests/seq
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/seq/seq_gsp_test[1]_include.cmake")
include("/root/repo/build/tests/seq/seq_gsp_property_test[1]_include.cmake")
