#include "cluster/kmeans.h"

#include <gtest/gtest.h>

#include "eval/clustering_metrics.h"
#include "gen/mixture.h"

namespace dmt::cluster {
namespace {

using core::PointSet;

gen::LabeledPoints WellSeparated(size_t clusters, uint64_t seed) {
  gen::GaussianMixtureParams params;
  params.num_clusters = clusters;
  params.points_per_cluster = 100;
  params.cluster_stddev = 0.5;
  params.spread = 50.0;
  auto data = gen::GenerateGaussianMixture(params, seed);
  EXPECT_TRUE(data.ok());
  return std::move(data).value();
}

TEST(KMeansTest, RecoversWellSeparatedClusters) {
  auto data = WellSeparated(4, 1);
  KMeansOptions options;
  options.k = 4;
  options.seed = 9;
  auto result = KMeans(data.points, options);
  ASSERT_TRUE(result.ok());
  auto ari = eval::AdjustedRandIndex(data.labels, result->assignments);
  ASSERT_TRUE(ari.ok());
  EXPECT_GT(*ari, 0.99);
}

TEST(KMeansTest, DeterministicForSeed) {
  auto data = WellSeparated(3, 2);
  KMeansOptions options;
  options.k = 3;
  options.seed = 5;
  auto a = KMeans(data.points, options);
  auto b = KMeans(data.points, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->assignments, b->assignments);
  EXPECT_DOUBLE_EQ(a->sse, b->sse);
}

TEST(KMeansTest, SseConsistentWithAssignments) {
  auto data = WellSeparated(3, 3);
  KMeansOptions options;
  options.k = 3;
  auto result = KMeans(data.points, options);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->sse,
              ComputeSse(data.points, result->assignments, result->centers),
              1e-6);
}

TEST(KMeansTest, MoreClustersNeverIncreaseSse) {
  auto data = WellSeparated(4, 4);
  double previous = std::numeric_limits<double>::infinity();
  for (size_t k : {1u, 2u, 4u, 8u, 16u}) {
    KMeansOptions options;
    options.k = k;
    options.seed = 11;
    options.init = KMeansInit::kPlusPlus;
    auto result = KMeans(data.points, options);
    ASSERT_TRUE(result.ok());
    EXPECT_LE(result->sse, previous * 1.001) << "k=" << k;
    previous = result->sse;
  }
}

TEST(KMeansTest, PlusPlusBeatsForgyOnAverage) {
  // On a hard instance (many small clusters), k-means++ seeding should be
  // at least as good as Forgy on average over seeds.
  auto data = WellSeparated(16, 5);
  double forgy_total = 0.0, plus_total = 0.0;
  for (uint64_t seed = 0; seed < 10; ++seed) {
    KMeansOptions options;
    options.k = 16;
    options.seed = seed;
    options.init = KMeansInit::kForgy;
    auto forgy = KMeans(data.points, options);
    options.init = KMeansInit::kPlusPlus;
    auto plus = KMeans(data.points, options);
    ASSERT_TRUE(forgy.ok());
    ASSERT_TRUE(plus.ok());
    forgy_total += forgy->sse;
    plus_total += plus->sse;
  }
  EXPECT_LE(plus_total, forgy_total * 1.05);
}

TEST(KMeansTest, KOneCenterIsCentroid) {
  PointSet points(1);
  points.Add(std::vector<double>{0.0});
  points.Add(std::vector<double>{10.0});
  KMeansOptions options;
  options.k = 1;
  auto result = KMeans(points, options);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->centers.point(0)[0], 5.0);
  EXPECT_DOUBLE_EQ(result->sse, 50.0);
}

TEST(KMeansTest, KEqualsNZeroSse) {
  auto data = WellSeparated(2, 6);
  KMeansOptions options;
  options.k = data.points.size();
  options.max_iterations = 50;
  auto result = KMeans(data.points, options);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->sse, 0.0, 1e-9);
}

TEST(KMeansTest, RejectsBadInputs) {
  PointSet points(1);
  points.Add(std::vector<double>{1.0});
  KMeansOptions options;
  options.k = 2;  // more clusters than points
  EXPECT_FALSE(KMeans(points, options).ok());
  options.k = 0;
  EXPECT_FALSE(KMeans(points, options).ok());
  options.k = 1;
  options.max_iterations = 0;
  EXPECT_FALSE(KMeans(points, options).ok());
  PointSet empty(2);
  EXPECT_FALSE(KMeans(empty, KMeansOptions{}).ok());
}

TEST(KMeansTest, WeightedPullsCentersTowardHeavyPoints) {
  PointSet points(1);
  points.Add(std::vector<double>{0.0});
  points.Add(std::vector<double>{10.0});
  KMeansOptions options;
  options.k = 1;
  std::vector<double> weights = {9.0, 1.0};
  auto result = WeightedKMeans(points, weights, options);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->centers.point(0)[0], 1.0);
}

TEST(KMeansTest, WeightedValidatesWeights) {
  PointSet points(1);
  points.Add(std::vector<double>{1.0});
  KMeansOptions options;
  options.k = 1;
  EXPECT_FALSE(WeightedKMeans(points, {1.0, 2.0}, options).ok());
  EXPECT_FALSE(WeightedKMeans(points, {0.0}, options).ok());
  EXPECT_FALSE(WeightedKMeans(points, {-1.0}, options).ok());
}

using Assignment = KMeansOptions::Assignment;

void ExpectBitIdentical(const ClusteringResult& lloyd,
                        const ClusteringResult& pruned,
                        Assignment method) {
  EXPECT_EQ(lloyd.assignments, pruned.assignments)
      << "assignments diverged for method "
      << static_cast<int>(method);
  // Bit-identical, not approximately equal: the pruned engines compute
  // the exact distance to the assigned center every iteration, so the
  // SSE reduction runs over identical values in identical order.
  EXPECT_EQ(lloyd.sse, pruned.sse);
  EXPECT_EQ(lloyd.iterations, pruned.iterations);
  EXPECT_EQ(lloyd.centers.data(), pruned.centers.data());
}

TEST(KMeansAssignmentTest, PrunedEnginesMatchLloydBitExact) {
  auto data = WellSeparated(12, 21);
  for (auto init : {KMeansInit::kForgy, KMeansInit::kPlusPlus}) {
    KMeansOptions options;
    options.k = 12;
    options.seed = 7;
    options.init = init;
    auto lloyd = KMeans(data.points, options);
    ASSERT_TRUE(lloyd.ok());
    for (auto method : {Assignment::kHamerly, Assignment::kElkan}) {
      options.assignment = method;
      auto pruned = KMeans(data.points, options);
      ASSERT_TRUE(pruned.ok());
      ExpectBitIdentical(*lloyd, *pruned, method);
      EXPECT_LT(pruned->distance_computations,
                lloyd->distance_computations);
    }
  }
}

TEST(KMeansAssignmentTest, WeightedPrunedMatchesLloyd) {
  auto data = WellSeparated(8, 22);
  std::vector<double> weights(data.points.size());
  for (size_t i = 0; i < weights.size(); ++i) {
    weights[i] = 1.0 + static_cast<double>(i % 5);
  }
  for (auto init : {KMeansInit::kForgy, KMeansInit::kPlusPlus}) {
    KMeansOptions options;
    options.k = 8;
    options.seed = 13;
    options.init = init;
    auto lloyd = WeightedKMeans(data.points, weights, options);
    ASSERT_TRUE(lloyd.ok());
    for (auto method : {Assignment::kHamerly, Assignment::kElkan}) {
      options.assignment = method;
      auto pruned = WeightedKMeans(data.points, weights, options);
      ASSERT_TRUE(pruned.ok());
      ExpectBitIdentical(*lloyd, *pruned, method);
    }
  }
}

TEST(KMeansAssignmentTest, LloydDistanceCountHasClosedForm) {
  auto data = WellSeparated(4, 23);
  KMeansOptions options;
  options.k = 4;
  options.seed = 3;
  options.init = KMeansInit::kForgy;  // no seeding distances
  auto result = KMeans(data.points, options);
  ASSERT_TRUE(result.ok());
  // One assignment pass per iteration plus the final consistency pass,
  // k distances per point each.
  EXPECT_EQ(result->distance_computations,
            (result->iterations + 1) * data.points.size() * options.k);
}

TEST(KMeansAssignmentTest, HamerlyPrunesMostDistancesWhenSeparated) {
  auto data = WellSeparated(16, 24);
  KMeansOptions options;
  options.k = 16;
  options.seed = 5;
  auto lloyd = KMeans(data.points, options);
  options.assignment = Assignment::kHamerly;
  auto hamerly = KMeans(data.points, options);
  ASSERT_TRUE(lloyd.ok());
  ASSERT_TRUE(hamerly.ok());
  EXPECT_EQ(lloyd->sse, hamerly->sse);
  // Well-separated clusters are the best case for the bounds: the vast
  // majority of full scans are pruned away.
  EXPECT_LE(hamerly->distance_computations * 3,
            lloyd->distance_computations);
}

// Exact duplicates force distance ties (lowest-index tie-breaking) and
// duplicate initial centers force empty-cluster restarts; the pruned
// engines must track Lloyd through both.
TEST(KMeansAssignmentTest, PrunedEnginesMatchLloydOnDegenerateTies) {
  PointSet points(2);
  for (int i = 0; i < 30; ++i) points.Add(std::vector<double>{0.0, 0.0});
  points.Add(std::vector<double>{10.0, 0.0});
  points.Add(std::vector<double>{20.0, 0.0});
  for (uint64_t seed = 0; seed < 10; ++seed) {
    KMeansOptions options;
    options.k = 3;
    options.seed = seed;
    options.init = KMeansInit::kForgy;
    auto lloyd = KMeans(points, options);
    ASSERT_TRUE(lloyd.ok());
    for (auto method : {Assignment::kHamerly, Assignment::kElkan}) {
      options.assignment = method;
      auto pruned = KMeans(points, options);
      ASSERT_TRUE(pruned.ok());
      ExpectBitIdentical(*lloyd, *pruned, method);
    }
  }
}

TEST(KMeansTest, EmptyClusterRestartsSeparateAllLocations) {
  // 30 coincident points and two lone outliers: duplicate initial
  // centers empty out, and the restart must place the empty clusters on
  // *distinct* farthest points (measured against the pre-update
  // centers), so the three distinct locations always end up with one
  // center each and the SSE reaches exactly zero.
  PointSet points(2);
  for (int i = 0; i < 30; ++i) points.Add(std::vector<double>{0.0, 0.0});
  points.Add(std::vector<double>{10.0, 0.0});
  points.Add(std::vector<double>{20.0, 0.0});
  for (uint64_t seed = 0; seed < 10; ++seed) {
    KMeansOptions options;
    options.k = 3;
    options.seed = seed;
    options.init = KMeansInit::kForgy;
    auto result = KMeans(points, options);
    ASSERT_TRUE(result.ok()) << "seed " << seed;
    EXPECT_LE(result->sse, 1e-12) << "seed " << seed;
    for (uint32_t a = 0; a < 3; ++a) {
      for (uint32_t b = a + 1; b < 3; ++b) {
        EXPECT_NE(result->centers.point(a)[0], result->centers.point(b)[0])
            << "duplicate centers for seed " << seed;
      }
    }
  }
}

TEST(KMeansTest, IterationsReported) {
  auto data = WellSeparated(3, 8);
  KMeansOptions options;
  options.k = 3;
  auto result = KMeans(data.points, options);
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result->iterations, 1u);
  EXPECT_LE(result->iterations, options.max_iterations);
}

}  // namespace
}  // namespace dmt::cluster
