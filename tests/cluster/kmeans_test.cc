#include "cluster/kmeans.h"

#include <gtest/gtest.h>

#include "eval/clustering_metrics.h"
#include "gen/mixture.h"

namespace dmt::cluster {
namespace {

using core::PointSet;

gen::LabeledPoints WellSeparated(size_t clusters, uint64_t seed) {
  gen::GaussianMixtureParams params;
  params.num_clusters = clusters;
  params.points_per_cluster = 100;
  params.cluster_stddev = 0.5;
  params.spread = 50.0;
  auto data = gen::GenerateGaussianMixture(params, seed);
  EXPECT_TRUE(data.ok());
  return std::move(data).value();
}

TEST(KMeansTest, RecoversWellSeparatedClusters) {
  auto data = WellSeparated(4, 1);
  KMeansOptions options;
  options.k = 4;
  options.seed = 9;
  auto result = KMeans(data.points, options);
  ASSERT_TRUE(result.ok());
  auto ari = eval::AdjustedRandIndex(data.labels, result->assignments);
  ASSERT_TRUE(ari.ok());
  EXPECT_GT(*ari, 0.99);
}

TEST(KMeansTest, DeterministicForSeed) {
  auto data = WellSeparated(3, 2);
  KMeansOptions options;
  options.k = 3;
  options.seed = 5;
  auto a = KMeans(data.points, options);
  auto b = KMeans(data.points, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->assignments, b->assignments);
  EXPECT_DOUBLE_EQ(a->sse, b->sse);
}

TEST(KMeansTest, SseConsistentWithAssignments) {
  auto data = WellSeparated(3, 3);
  KMeansOptions options;
  options.k = 3;
  auto result = KMeans(data.points, options);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->sse,
              ComputeSse(data.points, result->assignments, result->centers),
              1e-6);
}

TEST(KMeansTest, MoreClustersNeverIncreaseSse) {
  auto data = WellSeparated(4, 4);
  double previous = std::numeric_limits<double>::infinity();
  for (size_t k : {1u, 2u, 4u, 8u, 16u}) {
    KMeansOptions options;
    options.k = k;
    options.seed = 11;
    options.init = KMeansInit::kPlusPlus;
    auto result = KMeans(data.points, options);
    ASSERT_TRUE(result.ok());
    EXPECT_LE(result->sse, previous * 1.001) << "k=" << k;
    previous = result->sse;
  }
}

TEST(KMeansTest, PlusPlusBeatsForgyOnAverage) {
  // On a hard instance (many small clusters), k-means++ seeding should be
  // at least as good as Forgy on average over seeds.
  auto data = WellSeparated(16, 5);
  double forgy_total = 0.0, plus_total = 0.0;
  for (uint64_t seed = 0; seed < 10; ++seed) {
    KMeansOptions options;
    options.k = 16;
    options.seed = seed;
    options.init = KMeansInit::kForgy;
    auto forgy = KMeans(data.points, options);
    options.init = KMeansInit::kPlusPlus;
    auto plus = KMeans(data.points, options);
    ASSERT_TRUE(forgy.ok());
    ASSERT_TRUE(plus.ok());
    forgy_total += forgy->sse;
    plus_total += plus->sse;
  }
  EXPECT_LE(plus_total, forgy_total * 1.05);
}

TEST(KMeansTest, KOneCenterIsCentroid) {
  PointSet points(1);
  points.Add(std::vector<double>{0.0});
  points.Add(std::vector<double>{10.0});
  KMeansOptions options;
  options.k = 1;
  auto result = KMeans(points, options);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->centers.point(0)[0], 5.0);
  EXPECT_DOUBLE_EQ(result->sse, 50.0);
}

TEST(KMeansTest, KEqualsNZeroSse) {
  auto data = WellSeparated(2, 6);
  KMeansOptions options;
  options.k = data.points.size();
  options.max_iterations = 50;
  auto result = KMeans(data.points, options);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->sse, 0.0, 1e-9);
}

TEST(KMeansTest, RejectsBadInputs) {
  PointSet points(1);
  points.Add(std::vector<double>{1.0});
  KMeansOptions options;
  options.k = 2;  // more clusters than points
  EXPECT_FALSE(KMeans(points, options).ok());
  options.k = 0;
  EXPECT_FALSE(KMeans(points, options).ok());
  options.k = 1;
  options.max_iterations = 0;
  EXPECT_FALSE(KMeans(points, options).ok());
  PointSet empty(2);
  EXPECT_FALSE(KMeans(empty, KMeansOptions{}).ok());
}

TEST(KMeansTest, WeightedPullsCentersTowardHeavyPoints) {
  PointSet points(1);
  points.Add(std::vector<double>{0.0});
  points.Add(std::vector<double>{10.0});
  KMeansOptions options;
  options.k = 1;
  std::vector<double> weights = {9.0, 1.0};
  auto result = WeightedKMeans(points, weights, options);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->centers.point(0)[0], 1.0);
}

TEST(KMeansTest, WeightedValidatesWeights) {
  PointSet points(1);
  points.Add(std::vector<double>{1.0});
  KMeansOptions options;
  options.k = 1;
  EXPECT_FALSE(WeightedKMeans(points, {1.0, 2.0}, options).ok());
  EXPECT_FALSE(WeightedKMeans(points, {0.0}, options).ok());
  EXPECT_FALSE(WeightedKMeans(points, {-1.0}, options).ok());
}

TEST(KMeansTest, IterationsReported) {
  auto data = WellSeparated(3, 8);
  KMeansOptions options;
  options.k = 3;
  auto result = KMeans(data.points, options);
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result->iterations, 1u);
  EXPECT_LE(result->iterations, options.max_iterations);
}

}  // namespace
}  // namespace dmt::cluster
