#include "cluster/dbscan.h"

#include <gtest/gtest.h>

#include "eval/clustering_metrics.h"
#include "gen/mixture.h"

namespace dmt::cluster {
namespace {

using core::PointSet;

TEST(DbscanTest, FindsSeparatedClustersAndNoise) {
  gen::GaussianMixtureParams params;
  params.num_clusters = 3;
  params.points_per_cluster = 150;
  params.cluster_stddev = 0.5;
  params.spread = 40.0;
  params.noise_fraction = 0.05;
  auto data = gen::GenerateGaussianMixture(params, 1);
  ASSERT_TRUE(data.ok());
  DbscanOptions options;
  options.eps = 1.5;
  options.min_points = 5;
  auto result = Dbscan(data->points, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_clusters, 3u);
  // Clustered points agree with the ground truth (ignore noise points).
  std::vector<uint32_t> truth, predicted;
  for (size_t i = 0; i < data->labels.size(); ++i) {
    if (data->labels[i] == gen::kNoiseLabel) continue;
    if (result->labels[i] == DbscanResult::kNoise) continue;
    truth.push_back(data->labels[i]);
    predicted.push_back(static_cast<uint32_t>(result->labels[i]));
  }
  ASSERT_GT(truth.size(), 400u);
  auto ari = eval::AdjustedRandIndex(truth, predicted);
  ASSERT_TRUE(ari.ok());
  EXPECT_GT(*ari, 0.99);
}

TEST(DbscanTest, KdTreeAndBruteForceAgree) {
  gen::GaussianMixtureParams params;
  params.num_clusters = 4;
  params.points_per_cluster = 80;
  params.noise_fraction = 0.1;
  params.spread = 25.0;
  auto data = gen::GenerateGaussianMixture(params, 2);
  ASSERT_TRUE(data.ok());
  DbscanOptions with_tree, with_brute;
  with_tree.eps = with_brute.eps = 2.0;
  with_tree.min_points = with_brute.min_points = 4;
  with_tree.neighbors = DbscanOptions::Neighbors::kKdTree;
  with_brute.neighbors = DbscanOptions::Neighbors::kBruteForce;
  auto a = Dbscan(data->points, with_tree);
  auto b = Dbscan(data->points, with_brute);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->labels, b->labels);
  EXPECT_EQ(a->num_clusters, b->num_clusters);
}

TEST(DbscanTest, IsolatedPointsAreNoise) {
  PointSet points(2);
  points.Add(std::vector<double>{0.0, 0.0});
  points.Add(std::vector<double>{100.0, 100.0});
  points.Add(std::vector<double>{-100.0, 50.0});
  DbscanOptions options;
  options.eps = 1.0;
  options.min_points = 2;
  auto result = Dbscan(points, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_clusters, 0u);
  for (int32_t label : result->labels) {
    EXPECT_EQ(label, DbscanResult::kNoise);
  }
}

TEST(DbscanTest, SingleDenseBlobIsOneCluster) {
  PointSet points(2);
  for (int i = 0; i < 50; ++i) {
    points.Add(std::vector<double>{i * 0.01, 0.0});
  }
  DbscanOptions options;
  options.eps = 0.05;
  options.min_points = 3;
  auto result = Dbscan(points, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_clusters, 1u);
  for (int32_t label : result->labels) EXPECT_EQ(label, 0);
}

TEST(DbscanTest, ChainOfDensePointsConnects) {
  // Density-reachability: a long chain with spacing < eps forms one
  // cluster even though the endpoints are far apart.
  PointSet points(1);
  for (int i = 0; i < 100; ++i) {
    points.Add(std::vector<double>{static_cast<double>(i)});
  }
  DbscanOptions options;
  options.eps = 1.5;
  options.min_points = 2;
  auto result = Dbscan(points, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_clusters, 1u);
}

TEST(DbscanTest, MinPointsControlsCoreDefinition) {
  // Three points within eps of each other: with min_points=4 nothing is a
  // core point.
  PointSet points(1);
  points.Add(std::vector<double>{0.0});
  points.Add(std::vector<double>{0.1});
  points.Add(std::vector<double>{0.2});
  DbscanOptions options;
  options.eps = 0.5;
  options.min_points = 4;
  auto result = Dbscan(points, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_clusters, 0u);
  options.min_points = 3;
  result = Dbscan(points, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_clusters, 1u);
}

TEST(DbscanTest, BorderPointJoinsFirstReachingCluster) {
  // A border point between two dense groups belongs to a cluster (not
  // noise) and the result is deterministic.
  PointSet points(1);
  for (double x : {0.0, 0.1, 0.2, 1.0, 1.8, 1.9, 2.0}) {
    points.Add(std::vector<double>{x});
  }
  DbscanOptions options;
  options.eps = 0.85;
  options.min_points = 3;
  auto a = Dbscan(points, options);
  auto b = Dbscan(points, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->labels, b->labels);
  EXPECT_NE(a->labels[3], DbscanResult::kNoise);
}

TEST(DbscanTest, EmptyInput) {
  PointSet points(2);
  auto result = Dbscan(points, DbscanOptions{});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->labels.empty());
  EXPECT_EQ(result->num_clusters, 0u);
}

TEST(DbscanTest, ValidatesOptions) {
  PointSet points(1);
  points.Add(std::vector<double>{0.0});
  DbscanOptions options;
  options.eps = 0.0;
  EXPECT_FALSE(Dbscan(points, options).ok());
  options.eps = 1.0;
  options.min_points = 0;
  EXPECT_FALSE(Dbscan(points, options).ok());
}


TEST(KDistTest, SortedDescendingAndValleyVisible) {
  // Dense clusters + sparse noise: the k-dist graph starts high (noise)
  // and drops to the intra-cluster scale.
  gen::GaussianMixtureParams params;
  params.num_clusters = 3;
  params.points_per_cluster = 100;
  params.cluster_stddev = 0.3;
  params.spread = 30.0;
  params.noise_fraction = 0.1;
  auto data = gen::GenerateGaussianMixture(params, 21);
  ASSERT_TRUE(data.ok());
  auto distances = SortedKDistances(data->points, 4);
  ASSERT_TRUE(distances.ok());
  ASSERT_EQ(distances->size(), data->points.size());
  for (size_t i = 1; i < distances->size(); ++i) {
    EXPECT_LE((*distances)[i], (*distances)[i - 1]);
  }
  // The top of the curve (noise) is far above the median (cluster core).
  EXPECT_GT(distances->front(), 3.0 * (*distances)[distances->size() / 2]);
}

TEST(KDistTest, MatchesBruteForceValues) {
  core::PointSet points(1);
  for (double x : {0.0, 1.0, 3.0, 6.0}) {
    points.Add(std::vector<double>{x});
  }
  auto distances = SortedKDistances(points, 2);
  ASSERT_TRUE(distances.ok());
  // 2-dist of each point: 0 -> 3, 1 -> 2, 3 -> 3, 6 -> 5; sorted desc.
  EXPECT_EQ(*distances, (std::vector<double>{5.0, 3.0, 3.0, 2.0}));
}

TEST(KDistTest, ValidatesInput) {
  core::PointSet points(1);
  points.Add(std::vector<double>{0.0});
  points.Add(std::vector<double>{1.0});
  EXPECT_FALSE(SortedKDistances(points, 0).ok());
  EXPECT_FALSE(SortedKDistances(points, 2).ok());  // needs > k points
}

}  // namespace
}  // namespace dmt::cluster
