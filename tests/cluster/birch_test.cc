#include "cluster/birch.h"

#include <gtest/gtest.h>

#include "core/distance.h"
#include "eval/clustering_metrics.h"
#include "gen/mixture.h"

namespace dmt::cluster {
namespace {

using core::PointSet;

TEST(BirchTest, RecoversWellSeparatedClusters) {
  auto data = gen::GenerateBirchGrid(9, 120, 30.0, 0.8, 1);
  ASSERT_TRUE(data.ok());
  BirchOptions options;
  options.global_clusters = 9;
  options.threshold = 2.0;
  options.seed = 3;
  auto result = Birch(data->points, options);
  ASSERT_TRUE(result.ok());
  auto ari =
      eval::AdjustedRandIndex(data->labels, result->clustering.assignments);
  ASSERT_TRUE(ari.ok());
  EXPECT_GT(*ari, 0.95);
}

TEST(BirchTest, SummarizesIntoFewLeafEntries) {
  auto data = gen::GenerateBirchGrid(4, 500, 40.0, 1.0, 2);
  ASSERT_TRUE(data.ok());
  BirchOptions options;
  options.global_clusters = 4;
  options.threshold = 3.0;
  auto result = Birch(data->points, options);
  ASSERT_TRUE(result.ok());
  // 2000 points compress into far fewer CF entries.
  EXPECT_LT(result->num_leaf_entries, 400u);
  EXPECT_GE(result->num_leaf_entries, 4u);
}

TEST(BirchTest, ThresholdEscalationBoundsMemory) {
  auto data = gen::GenerateBirchGrid(16, 200, 10.0, 1.5, 3);
  ASSERT_TRUE(data.ok());
  BirchOptions options;
  options.global_clusters = 16;
  options.threshold = 0.01;          // absurdly tight: forces rebuilds
  options.max_leaf_entries_total = 64;
  auto result = Birch(data->points, options);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->rebuilds, 0u);
  EXPECT_GT(result->final_threshold, options.threshold);
  EXPECT_LE(result->num_leaf_entries, 2 * 64u);  // bounded by the cap
}

TEST(BirchTest, DeterministicForSeed) {
  auto data = gen::GenerateBirchGrid(4, 100, 25.0, 1.0, 4);
  ASSERT_TRUE(data.ok());
  BirchOptions options;
  options.global_clusters = 4;
  auto a = Birch(data->points, options);
  auto b = Birch(data->points, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->clustering.assignments, b->clustering.assignments);
}

TEST(BirchTest, AssignmentsConsistentWithCenters) {
  auto data = gen::GenerateBirchGrid(4, 100, 25.0, 1.0, 5);
  ASSERT_TRUE(data.ok());
  BirchOptions options;
  options.global_clusters = 4;
  auto result = Birch(data->points, options);
  ASSERT_TRUE(result.ok());
  // Every point's assigned center is its nearest center.
  const auto& centers = result->clustering.centers;
  for (size_t i = 0; i < data->points.size(); ++i) {
    double assigned = core::SquaredEuclideanDistance(
        data->points.point(i),
        centers.point(result->clustering.assignments[i]));
    for (uint32_t c = 0; c < centers.size(); ++c) {
      double d = core::SquaredEuclideanDistance(data->points.point(i),
                                                centers.point(c));
      EXPECT_GE(d + 1e-9, assigned);
    }
  }
}

TEST(BirchTest, FewerPointsThanClustersClamped) {
  PointSet points(2);
  points.Add(std::vector<double>{0.0, 0.0});
  points.Add(std::vector<double>{1.0, 1.0});
  BirchOptions options;
  options.global_clusters = 10;
  auto result = Birch(points, options);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result->clustering.centers.size(), 2u);
}

TEST(BirchTest, ValidatesOptions) {
  PointSet points(1);
  points.Add(std::vector<double>{1.0});
  BirchOptions options;
  options.threshold = -1.0;
  EXPECT_FALSE(Birch(points, options).ok());
  options = BirchOptions{};
  options.branching = 1;
  EXPECT_FALSE(Birch(points, options).ok());
  options = BirchOptions{};
  options.global_clusters = 0;
  EXPECT_FALSE(Birch(points, options).ok());
  options = BirchOptions{};
  options.max_leaf_entries_total = 1;
  EXPECT_FALSE(Birch(points, options).ok());
  PointSet empty(2);
  EXPECT_FALSE(Birch(empty, BirchOptions{}).ok());
}

TEST(BirchTest, SseCloseToDirectKMeansOnEasyData) {
  auto data = gen::GenerateBirchGrid(9, 150, 30.0, 0.8, 7);
  ASSERT_TRUE(data.ok());
  BirchOptions birch_options;
  birch_options.global_clusters = 9;
  birch_options.threshold = 2.0;
  auto birch = Birch(data->points, birch_options);
  ASSERT_TRUE(birch.ok());
  KMeansOptions kmeans_options;
  kmeans_options.k = 9;
  kmeans_options.seed = 3;
  auto kmeans = KMeans(data->points, kmeans_options);
  ASSERT_TRUE(kmeans.ok());
  // BIRCH works on summaries, so allow slack; on well-separated data it
  // should land within 2x of direct k-means.
  EXPECT_LT(birch->clustering.sse, 2.0 * kmeans->sse + 1e-9);
}

}  // namespace
}  // namespace dmt::cluster
