#include "cluster/clarans.h"

#include <gtest/gtest.h>

#include <set>

#include "core/distance.h"
#include "eval/clustering_metrics.h"
#include "gen/mixture.h"

namespace dmt::cluster {
namespace {

using core::PointSet;

TEST(ClaransTest, RecoversWellSeparatedClusters) {
  auto data = gen::GenerateBirchGrid(4, 80, 25.0, 0.8, 1);
  ASSERT_TRUE(data.ok());
  ClaransOptions options;
  options.k = 4;
  options.seed = 7;
  auto result = Clarans(data->points, options);
  ASSERT_TRUE(result.ok());
  auto ari = eval::AdjustedRandIndex(data->labels, result->assignments);
  ASSERT_TRUE(ari.ok());
  EXPECT_GT(*ari, 0.95);
}

TEST(ClaransTest, MedoidsAreInputPoints) {
  auto data = gen::GenerateBirchGrid(3, 50, 20.0, 1.0, 2);
  ASSERT_TRUE(data.ok());
  ClaransOptions options;
  options.k = 3;
  auto result = Clarans(data->points, options);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->medoids.size(), 3u);
  std::set<uint32_t> distinct(result->medoids.begin(),
                              result->medoids.end());
  EXPECT_EQ(distinct.size(), 3u);
  for (uint32_t m : result->medoids) {
    EXPECT_LT(m, data->points.size());
  }
}

TEST(ClaransTest, CostConsistentWithAssignments) {
  auto data = gen::GenerateBirchGrid(3, 40, 20.0, 1.0, 3);
  ASSERT_TRUE(data.ok());
  ClaransOptions options;
  options.k = 3;
  auto result = Clarans(data->points, options);
  ASSERT_TRUE(result.ok());
  double recomputed = 0.0;
  for (size_t i = 0; i < data->points.size(); ++i) {
    recomputed += core::EuclideanDistance(
        data->points.point(i),
        data->points.point(result->medoids[result->assignments[i]]));
  }
  EXPECT_NEAR(result->total_cost, recomputed, 1e-9);
  // And each point is assigned to its nearest medoid.
  for (size_t i = 0; i < data->points.size(); ++i) {
    double assigned = core::EuclideanDistance(
        data->points.point(i),
        data->points.point(result->medoids[result->assignments[i]]));
    for (uint32_t m : result->medoids) {
      EXPECT_GE(core::EuclideanDistance(data->points.point(i),
                                        data->points.point(m)) +
                    1e-9,
                assigned);
    }
  }
}

TEST(ClaransTest, DeterministicForSeed) {
  auto data = gen::GenerateBirchGrid(3, 40, 20.0, 1.0, 4);
  ASSERT_TRUE(data.ok());
  ClaransOptions options;
  options.k = 3;
  options.seed = 42;
  auto a = Clarans(data->points, options);
  auto b = Clarans(data->points, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->medoids, b->medoids);
  EXPECT_DOUBLE_EQ(a->total_cost, b->total_cost);
}

TEST(ClaransTest, MoreRestartsNeverHurt) {
  auto data = gen::GenerateBirchGrid(9, 30, 12.0, 1.2, 5);
  ASSERT_TRUE(data.ok());
  ClaransOptions one;
  one.k = 9;
  one.num_local = 1;
  one.max_neighbors = 50;  // weak search so restarts matter
  one.seed = 3;
  ClaransOptions many = one;
  many.num_local = 5;
  auto single = Clarans(data->points, one);
  auto multi = Clarans(data->points, many);
  ASSERT_TRUE(single.ok());
  ASSERT_TRUE(multi.ok());
  EXPECT_LE(multi->total_cost, single->total_cost + 1e-9);
}

TEST(ClaransTest, RobustToSingleOutlier) {
  // k-medoids keeps its center on the data; a far outlier cannot drag a
  // medoid the way it drags a k-means centroid.
  PointSet points(1);
  for (double x : {0.0, 0.1, 0.2, 0.3, 0.4}) {
    points.Add(std::vector<double>{x});
  }
  points.Add(std::vector<double>{1000.0});
  ClaransOptions options;
  options.k = 2;
  options.seed = 1;
  auto result = Clarans(points, options);
  ASSERT_TRUE(result.ok());
  // One medoid is the outlier itself; the other lies inside the blob.
  bool has_outlier_medoid = false;
  bool has_blob_medoid = false;
  for (uint32_t m : result->medoids) {
    if (points.point(m)[0] > 500.0) has_outlier_medoid = true;
    if (points.point(m)[0] < 1.0) has_blob_medoid = true;
  }
  EXPECT_TRUE(has_outlier_medoid);
  EXPECT_TRUE(has_blob_medoid);
}

TEST(ClaransTest, KEqualsNHasZeroCost) {
  PointSet points(1);
  for (double x : {1.0, 2.0, 3.0}) points.Add(std::vector<double>{x});
  ClaransOptions options;
  options.k = 3;
  auto result = Clarans(points, options);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->total_cost, 0.0);
}

TEST(ClaransTest, ValidatesInputs) {
  PointSet points(1);
  points.Add(std::vector<double>{1.0});
  ClaransOptions options;
  options.k = 0;
  EXPECT_FALSE(Clarans(points, options).ok());
  options.k = 2;
  EXPECT_FALSE(Clarans(points, options).ok());  // k > n
  options.k = 1;
  options.num_local = 0;
  EXPECT_FALSE(Clarans(points, options).ok());
  PointSet empty(1);
  EXPECT_FALSE(Clarans(empty, ClaransOptions{}).ok());
}

}  // namespace
}  // namespace dmt::cluster
