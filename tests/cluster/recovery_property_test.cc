// Property sweep: every clustering algorithm recovers well-separated
// planted clusters across seeds and cluster counts, and degrades
// gracefully (never crashes, always valid output) when clusters overlap.
#include <gtest/gtest.h>

#include "cluster/agglomerative.h"
#include "cluster/birch.h"
#include "cluster/clarans.h"
#include "cluster/kmeans.h"
#include "eval/clustering_metrics.h"
#include "gen/mixture.h"

namespace dmt::cluster {
namespace {

enum class Method { kKMeans, kBirch, kClarans, kWard };

std::string MethodName(Method method) {
  switch (method) {
    case Method::kKMeans:
      return "KMeans";
    case Method::kBirch:
      return "Birch";
    case Method::kClarans:
      return "Clarans";
    case Method::kWard:
      return "Ward";
  }
  return "?";
}

core::Result<std::vector<uint32_t>> RunMethod(Method method,
                                        const core::PointSet& points,
                                        size_t k, uint64_t seed) {
  switch (method) {
    case Method::kKMeans: {
      KMeansOptions options;
      options.k = k;
      options.seed = seed;
      DMT_ASSIGN_OR_RETURN(ClusteringResult result,
                           KMeans(points, options));
      return result.assignments;
    }
    case Method::kBirch: {
      BirchOptions options;
      options.global_clusters = k;
      options.threshold = 2.0;
      options.seed = seed;
      DMT_ASSIGN_OR_RETURN(BirchResult result, Birch(points, options));
      return result.clustering.assignments;
    }
    case Method::kClarans: {
      ClaransOptions options;
      options.k = k;
      options.max_neighbors = 600;
      options.seed = seed;
      DMT_ASSIGN_OR_RETURN(MedoidResult result, Clarans(points, options));
      return result.assignments;
    }
    case Method::kWard: {
      DMT_ASSIGN_OR_RETURN(Dendrogram dendrogram,
                           AgglomerativeCluster(points, Linkage::kWard));
      return dendrogram.CutAtK(k);
    }
  }
  return core::Status::Internal("unknown method");
}

struct SweepCase {
  size_t clusters;
  uint64_t seed;
};

using RecoveryParam = std::tuple<Method, SweepCase>;

class RecoveryTest : public testing::TestWithParam<RecoveryParam> {};

TEST_P(RecoveryTest, RecoversSeparatedGridClusters) {
  auto [method, sweep] = GetParam();
  auto data = gen::GenerateBirchGrid(sweep.clusters, 60, 25.0, 0.8,
                                     sweep.seed);
  ASSERT_TRUE(data.ok());
  auto assignments =
      RunMethod(method, data->points, sweep.clusters, sweep.seed + 1);
  ASSERT_TRUE(assignments.ok()) << MethodName(method);
  ASSERT_EQ(assignments->size(), data->points.size());
  auto ari = eval::AdjustedRandIndex(data->labels, *assignments);
  ASSERT_TRUE(ari.ok());
  EXPECT_GT(*ari, 0.9) << MethodName(method) << " k=" << sweep.clusters
                       << " seed=" << sweep.seed;
}

TEST_P(RecoveryTest, ValidOutputOnOverlappingClusters) {
  auto [method, sweep] = GetParam();
  // Heavy overlap: stddev comparable to spacing. Quality is not asserted,
  // only contract validity.
  auto data = gen::GenerateBirchGrid(sweep.clusters, 40, 3.0, 2.0,
                                     sweep.seed);
  ASSERT_TRUE(data.ok());
  auto assignments =
      RunMethod(method, data->points, sweep.clusters, sweep.seed + 1);
  ASSERT_TRUE(assignments.ok()) << MethodName(method);
  ASSERT_EQ(assignments->size(), data->points.size());
  for (uint32_t label : *assignments) {
    EXPECT_LT(label, sweep.clusters);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RecoveryTest,
    testing::Combine(testing::Values(Method::kKMeans, Method::kBirch,
                                     Method::kClarans, Method::kWard),
                     testing::Values(SweepCase{4, 1}, SweepCase{9, 2},
                                     SweepCase{16, 3})),
    [](const testing::TestParamInfo<RecoveryParam>& info) {
      return MethodName(std::get<0>(info.param)) + "_k" +
             std::to_string(std::get<1>(info.param).clusters) + "_seed" +
             std::to_string(std::get<1>(info.param).seed);
    });

}  // namespace
}  // namespace dmt::cluster
