// Differential tests for the parallel clustering kernels: k-means and
// DBSCAN with num_threads in {2, 4} must produce bit-identical output to
// the serial path on seeded mixture workloads — same assignments/labels,
// same centers, same SSE to the last bit.
#include <gtest/gtest.h>

#include "cluster/dbscan.h"
#include "cluster/kmeans.h"
#include "core/check.h"
#include "gen/mixture.h"
#include "obs/metrics.h"

namespace dmt::cluster {
namespace {

gen::LabeledPoints Mixture(size_t clusters, double noise, uint64_t seed) {
  gen::GaussianMixtureParams params;
  params.num_clusters = clusters;
  params.points_per_cluster = 150;
  params.cluster_stddev = 0.8;
  params.placement = gen::CenterPlacement::kGrid;
  params.spread = 10.0;
  params.noise_fraction = noise;
  auto data = gen::GenerateGaussianMixture(params, seed);
  DMT_CHECK(data.ok());
  return std::move(data).value();
}

void ExpectSameClustering(const ClusteringResult& serial,
                          const ClusteringResult& parallel, size_t threads) {
  EXPECT_EQ(serial.assignments, parallel.assignments)
      << "assignments diverged at num_threads=" << threads;
  EXPECT_EQ(serial.iterations, parallel.iterations);
  // Bit-identical, not approximately equal: the parallel path must keep
  // every floating-point reduction in serial index order.
  EXPECT_EQ(serial.sse, parallel.sse);
  ASSERT_EQ(serial.centers.size(), parallel.centers.size());
  EXPECT_EQ(serial.centers.data(), parallel.centers.data());
  // Pruning decisions are per-point, so the distance-evaluation tally
  // must not depend on the chunking either.
  EXPECT_EQ(serial.distance_computations, parallel.distance_computations);
}

TEST(KMeansParallelDiffTest, PlusPlusSeedingMatchesSerial) {
  auto data = Mixture(9, 0.0, /*seed=*/17);
  KMeansOptions options;
  options.k = 9;
  options.seed = 5;
  auto serial = KMeans(data.points, options);
  ASSERT_TRUE(serial.ok());
  for (size_t threads : {2u, 4u}) {
    options.num_threads = threads;
    auto parallel = KMeans(data.points, options);
    ASSERT_TRUE(parallel.ok());
    ExpectSameClustering(*serial, *parallel, threads);
  }
}

TEST(KMeansParallelDiffTest, ForgySeedingMatchesSerial) {
  auto data = Mixture(6, 0.0, /*seed=*/18);
  KMeansOptions options;
  options.k = 6;
  options.seed = 11;
  options.init = KMeansInit::kForgy;
  auto serial = KMeans(data.points, options);
  ASSERT_TRUE(serial.ok());
  for (size_t threads : {2u, 4u}) {
    options.num_threads = threads;
    auto parallel = KMeans(data.points, options);
    ASSERT_TRUE(parallel.ok());
    ExpectSameClustering(*serial, *parallel, threads);
  }
}

TEST(KMeansParallelDiffTest, WeightedMatchesSerial) {
  auto data = Mixture(5, 0.0, /*seed=*/19);
  std::vector<double> weights(data.points.size());
  for (size_t i = 0; i < weights.size(); ++i) {
    weights[i] = 1.0 + static_cast<double>(i % 7);
  }
  KMeansOptions options;
  options.k = 5;
  options.seed = 23;
  auto serial = WeightedKMeans(data.points, weights, options);
  ASSERT_TRUE(serial.ok());
  for (size_t threads : {2u, 4u}) {
    options.num_threads = threads;
    auto parallel = WeightedKMeans(data.points, weights, options);
    ASSERT_TRUE(parallel.ok());
    ExpectSameClustering(*serial, *parallel, threads);
  }
}

// The bound-pruned assignment engines keep per-point bound arrays that
// are maintained chunk-parallel; serial and threaded runs must agree
// bit-for-bit with each other *and* with serial Lloyd.
TEST(KMeansParallelDiffTest, PrunedEnginesMatchSerialAndLloyd) {
  auto data = Mixture(9, 0.0, /*seed=*/37);
  KMeansOptions options;
  options.k = 9;
  options.seed = 5;
  auto lloyd = KMeans(data.points, options);
  ASSERT_TRUE(lloyd.ok());
  for (auto method : {KMeansOptions::Assignment::kHamerly,
                      KMeansOptions::Assignment::kElkan}) {
    options.assignment = method;
    options.num_threads = 0;
    auto serial = KMeans(data.points, options);
    ASSERT_TRUE(serial.ok());
    EXPECT_EQ(lloyd->assignments, serial->assignments);
    EXPECT_EQ(lloyd->sse, serial->sse);
    EXPECT_EQ(lloyd->iterations, serial->iterations);
    for (size_t threads : {2u, 4u}) {
      options.num_threads = threads;
      auto parallel = KMeans(data.points, options);
      ASSERT_TRUE(parallel.ok());
      ExpectSameClustering(*serial, *parallel, threads);
    }
  }
}

TEST(KMeansParallelDiffTest, PrunedForgySeedingMatchesSerial) {
  auto data = Mixture(6, 0.0, /*seed=*/38);
  for (auto method : {KMeansOptions::Assignment::kHamerly,
                      KMeansOptions::Assignment::kElkan}) {
    KMeansOptions options;
    options.k = 6;
    options.seed = 11;
    options.init = KMeansInit::kForgy;
    options.assignment = method;
    auto serial = KMeans(data.points, options);
    ASSERT_TRUE(serial.ok());
    for (size_t threads : {2u, 4u}) {
      options.num_threads = threads;
      auto parallel = KMeans(data.points, options);
      ASSERT_TRUE(parallel.ok());
      ExpectSameClustering(*serial, *parallel, threads);
    }
  }
}

TEST(KMeansParallelDiffTest, WeightedPrunedMatchesSerial) {
  auto data = Mixture(5, 0.0, /*seed=*/39);
  std::vector<double> weights(data.points.size());
  for (size_t i = 0; i < weights.size(); ++i) {
    weights[i] = 1.0 + static_cast<double>(i % 7);
  }
  for (auto method : {KMeansOptions::Assignment::kHamerly,
                      KMeansOptions::Assignment::kElkan}) {
    KMeansOptions options;
    options.k = 5;
    options.seed = 23;
    options.assignment = method;
    auto serial = WeightedKMeans(data.points, weights, options);
    ASSERT_TRUE(serial.ok());
    for (size_t threads : {2u, 4u}) {
      options.num_threads = threads;
      auto parallel = WeightedKMeans(data.points, weights, options);
      ASSERT_TRUE(parallel.ok());
      ExpectSameClustering(*serial, *parallel, threads);
    }
  }
}

TEST(DbscanParallelDiffTest, KdTreeQueriesMatchSerial) {
  auto data = Mixture(8, 0.1, /*seed=*/29);
  DbscanOptions options;
  options.eps = 1.2;
  options.min_points = 6;
  auto serial = Dbscan(data.points, options);
  ASSERT_TRUE(serial.ok());
  EXPECT_GT(serial->num_clusters, 0u);
  for (size_t threads : {2u, 4u}) {
    options.num_threads = threads;
    auto parallel = Dbscan(data.points, options);
    ASSERT_TRUE(parallel.ok());
    EXPECT_EQ(serial->labels, parallel->labels)
        << "labels diverged at num_threads=" << threads;
    EXPECT_EQ(serial->num_clusters, parallel->num_clusters);
  }
}

TEST(DbscanParallelDiffTest, BruteForceQueriesMatchSerial) {
  auto data = Mixture(4, 0.15, /*seed=*/31);
  DbscanOptions options;
  options.eps = 1.0;
  options.min_points = 5;
  options.neighbors = DbscanOptions::Neighbors::kBruteForce;
  auto serial = Dbscan(data.points, options);
  ASSERT_TRUE(serial.ok());
  for (size_t threads : {2u, 4u}) {
    options.num_threads = threads;
    auto parallel = Dbscan(data.points, options);
    ASSERT_TRUE(parallel.ok());
    EXPECT_EQ(serial->labels, parallel->labels);
    EXPECT_EQ(serial->num_clusters, parallel->num_clusters);
  }
}

TEST(DbscanParallelDiffTest, MoreThreadsThanPoints) {
  core::PointSet points(2);
  points.Add(std::vector<double>{0.0, 0.0});
  points.Add(std::vector<double>{0.1, 0.0});
  points.Add(std::vector<double>{10.0, 10.0});
  DbscanOptions options;
  options.eps = 0.5;
  options.min_points = 2;
  auto serial = Dbscan(points, options);
  options.num_threads = 16;
  auto parallel = Dbscan(points, options);
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(parallel.ok());
  EXPECT_EQ(serial->labels, parallel->labels);
}

TEST(RegistryParallelDiffTest, CounterTotalsIdenticalAcrossThreadCounts) {
  // Registry totals (distance computations, iterations, region queries,
  // neighbour counts) must be bit-identical at every thread count,
  // including more threads than points (7 against a 3-point set).
  auto data = Mixture(6, 0.05, /*seed=*/53);
  core::PointSet tiny(2);
  tiny.Add(std::vector<double>{0.0, 0.0});
  tiny.Add(std::vector<double>{0.1, 0.0});
  tiny.Add(std::vector<double>{10.0, 10.0});
  std::vector<std::pair<std::string, uint64_t>> baseline;
  for (size_t threads : {0u, 1u, 2u, 7u}) {
    obs::Registry::Global().Reset();
    KMeansOptions kmeans_options;
    kmeans_options.k = 6;
    kmeans_options.seed = 5;
    kmeans_options.num_threads = threads;
    ASSERT_TRUE(KMeans(data.points, kmeans_options).ok());
    kmeans_options.assignment = KMeansOptions::Assignment::kElkan;
    ASSERT_TRUE(KMeans(data.points, kmeans_options).ok());
    DbscanOptions dbscan_options;
    dbscan_options.eps = 1.2;
    dbscan_options.min_points = 6;
    dbscan_options.num_threads = threads;
    ASSERT_TRUE(Dbscan(data.points, dbscan_options).ok());
    DbscanOptions tiny_options;
    tiny_options.eps = 0.5;
    tiny_options.min_points = 2;
    tiny_options.num_threads = threads;
    ASSERT_TRUE(Dbscan(tiny, tiny_options).ok());
    auto snapshot = obs::Registry::Global().CounterSnapshot();
    if (threads == 0) {
      baseline = snapshot;
      EXPECT_FALSE(baseline.empty());
    } else {
      EXPECT_EQ(snapshot, baseline)
          << "registry totals diverged at num_threads=" << threads;
    }
  }
}

}  // namespace
}  // namespace dmt::cluster
