#include "cluster/agglomerative.h"

#include <gtest/gtest.h>

#include "eval/clustering_metrics.h"
#include "gen/mixture.h"

namespace dmt::cluster {
namespace {

using core::PointSet;

PointSet Line(std::vector<double> xs) {
  PointSet points(1);
  for (double x : xs) points.Add(std::vector<double>{x});
  return points;
}

TEST(AgglomerativeTest, MergeCountIsNMinusOne) {
  PointSet points = Line({0, 1, 5, 6, 20});
  for (Linkage linkage : {Linkage::kSingle, Linkage::kComplete,
                          Linkage::kAverage, Linkage::kWard}) {
    auto dendrogram = AgglomerativeCluster(points, linkage);
    ASSERT_TRUE(dendrogram.ok());
    EXPECT_EQ(dendrogram->merges().size(), 4u);
    EXPECT_EQ(dendrogram->num_points(), 5u);
  }
}

TEST(AgglomerativeTest, SingleLinkageMergesClosestFirst) {
  PointSet points = Line({0, 1, 10, 12, 30});
  auto dendrogram = AgglomerativeCluster(points, Linkage::kSingle);
  ASSERT_TRUE(dendrogram.ok());
  const auto& merges = dendrogram->merges();
  // First merge: points 0 and 1 (distance 1).
  EXPECT_DOUBLE_EQ(merges[0].height, 1.0);
  // Heights are non-decreasing for single linkage.
  for (size_t i = 1; i < merges.size(); ++i) {
    EXPECT_GE(merges[i].height, merges[i - 1].height);
  }
  // Final merge connects the far point at distance 18 (30 - 12).
  EXPECT_DOUBLE_EQ(merges.back().height, 18.0);
}

TEST(AgglomerativeTest, CompleteLinkageUsesFarthestPair) {
  PointSet points = Line({0, 1, 10});
  auto dendrogram = AgglomerativeCluster(points, Linkage::kComplete);
  ASSERT_TRUE(dendrogram.ok());
  const auto& merges = dendrogram->merges();
  EXPECT_DOUBLE_EQ(merges[0].height, 1.0);
  // Complete linkage distance from {0,1} to {10} is max(10, 9) = 10.
  EXPECT_DOUBLE_EQ(merges[1].height, 10.0);
}

TEST(AgglomerativeTest, AverageLinkageUsesMeanPairDistance) {
  PointSet points = Line({0, 1, 10});
  auto dendrogram = AgglomerativeCluster(points, Linkage::kAverage);
  ASSERT_TRUE(dendrogram.ok());
  // Average distance from {0,1} to {10}: (10 + 9)/2 = 9.5.
  EXPECT_DOUBLE_EQ(dendrogram->merges()[1].height, 9.5);
}

TEST(AgglomerativeTest, CutAtKProducesKClusters) {
  PointSet points = Line({0, 1, 5, 6, 20, 21});
  auto dendrogram = AgglomerativeCluster(points, Linkage::kWard);
  ASSERT_TRUE(dendrogram.ok());
  for (size_t k = 1; k <= 6; ++k) {
    auto labels = dendrogram->CutAtK(k);
    ASSERT_TRUE(labels.ok());
    uint32_t max_label = 0;
    for (uint32_t label : *labels) max_label = std::max(max_label, label);
    EXPECT_EQ(max_label + 1, k);
  }
}

TEST(AgglomerativeTest, CutAtThreeSeparatesNaturalGroups) {
  PointSet points = Line({0, 1, 5, 6, 20, 21});
  for (Linkage linkage : {Linkage::kSingle, Linkage::kComplete,
                          Linkage::kAverage, Linkage::kWard}) {
    auto dendrogram = AgglomerativeCluster(points, linkage);
    ASSERT_TRUE(dendrogram.ok());
    auto labels = dendrogram->CutAtK(3);
    ASSERT_TRUE(labels.ok());
    EXPECT_EQ((*labels)[0], (*labels)[1]);
    EXPECT_EQ((*labels)[2], (*labels)[3]);
    EXPECT_EQ((*labels)[4], (*labels)[5]);
    EXPECT_NE((*labels)[0], (*labels)[2]);
    EXPECT_NE((*labels)[2], (*labels)[4]);
  }
}

TEST(AgglomerativeTest, SingleLinkageChains) {
  // A chain of close points plus one far pair: single linkage keeps the
  // chain together at k=2 even though its diameter is large.
  PointSet points = Line({0, 1, 2, 3, 4, 5, 50, 51});
  auto dendrogram = AgglomerativeCluster(points, Linkage::kSingle);
  ASSERT_TRUE(dendrogram.ok());
  auto labels = dendrogram->CutAtK(2);
  ASSERT_TRUE(labels.ok());
  for (size_t i = 0; i < 6; ++i) EXPECT_EQ((*labels)[i], (*labels)[0]);
  EXPECT_EQ((*labels)[6], (*labels)[7]);
  EXPECT_NE((*labels)[0], (*labels)[6]);
}

TEST(AgglomerativeTest, WardRecoversGaussianClusters) {
  gen::GaussianMixtureParams params;
  params.num_clusters = 4;
  params.points_per_cluster = 60;
  params.cluster_stddev = 0.5;
  params.placement = gen::CenterPlacement::kGrid;
  params.spread = 30.0;
  auto data = gen::GenerateGaussianMixture(params, 5);
  ASSERT_TRUE(data.ok());
  auto dendrogram = AgglomerativeCluster(data->points, Linkage::kWard);
  ASSERT_TRUE(dendrogram.ok());
  auto labels = dendrogram->CutAtK(4);
  ASSERT_TRUE(labels.ok());
  auto ari = eval::AdjustedRandIndex(data->labels, *labels);
  ASSERT_TRUE(ari.ok());
  EXPECT_GT(*ari, 0.99);
}

TEST(AgglomerativeTest, SinglePointDendrogram) {
  PointSet points = Line({42.0});
  auto dendrogram = AgglomerativeCluster(points, Linkage::kAverage);
  ASSERT_TRUE(dendrogram.ok());
  EXPECT_TRUE(dendrogram->merges().empty());
  auto labels = dendrogram->CutAtK(1);
  ASSERT_TRUE(labels.ok());
  EXPECT_EQ(labels->size(), 1u);
}

TEST(AgglomerativeTest, CutValidation) {
  PointSet points = Line({0, 1, 2});
  auto dendrogram = AgglomerativeCluster(points, Linkage::kComplete);
  ASSERT_TRUE(dendrogram.ok());
  EXPECT_FALSE(dendrogram->CutAtK(0).ok());
  EXPECT_FALSE(dendrogram->CutAtK(4).ok());
}

TEST(AgglomerativeTest, InputValidation) {
  PointSet empty(2);
  EXPECT_FALSE(AgglomerativeCluster(empty, Linkage::kSingle).ok());
}

TEST(AgglomerativeTest, MergeSizesAccumulate) {
  PointSet points = Line({0, 1, 2, 3});
  auto dendrogram = AgglomerativeCluster(points, Linkage::kWard);
  ASSERT_TRUE(dendrogram.ok());
  EXPECT_EQ(dendrogram->merges().back().size, 4u);
}

}  // namespace
}  // namespace dmt::cluster
