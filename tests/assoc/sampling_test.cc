#include "assoc/sampling.h"

#include <gtest/gtest.h>

#include "assoc/fp_growth.h"
#include "core/rng.h"
#include "gen/quest.h"

namespace dmt::assoc {
namespace {

using core::ItemId;
using core::TransactionDatabase;

TEST(NegativeBorderTest, SingletonsOfMissingItems) {
  std::vector<FrequentItemset> frequent = {{{0}, 5}, {{2}, 4}};
  auto border = NegativeBorder(frequent, 4);
  // Items 1 and 3 are absent -> border; join of {0} and {2} -> {0,2}.
  std::vector<Itemset> expected = {{1}, {3}, {0, 2}};
  ASSERT_EQ(border.size(), expected.size());
  for (const auto& itemset : expected) {
    EXPECT_NE(std::find(border.begin(), border.end(), itemset),
              border.end());
  }
}

TEST(NegativeBorderTest, RespectsDownwardClosure) {
  // Frequent: all singletons of {0,1,2}, pairs {0,1} and {0,2}.
  std::vector<FrequentItemset> frequent = {
      {{0}, 9}, {{1}, 8}, {{2}, 7}, {{0, 1}, 5}, {{0, 2}, 4}};
  auto border = NegativeBorder(frequent, 3);
  // {1,2} is the only missing pair with frequent subsets; {0,1,2} needs
  // {1,2} frequent so it is NOT in the border.
  ASSERT_EQ(border.size(), 1u);
  EXPECT_EQ(border[0], (Itemset{1, 2}));
}

TEST(NegativeBorderTest, CompleteCollectionHasBorderOfJoins) {
  std::vector<FrequentItemset> frequent = {
      {{0}, 9}, {{1}, 8}, {{0, 1}, 5}};
  auto border = NegativeBorder(frequent, 2);
  EXPECT_TRUE(border.empty());  // nothing missing below the closure
}

TransactionDatabase RandomDatabase(uint64_t seed, size_t transactions,
                                   size_t universe, double density) {
  core::Rng rng(seed);
  TransactionDatabase db;
  for (size_t t = 0; t < transactions; ++t) {
    std::vector<ItemId> items;
    for (ItemId item = 0; item < universe; ++item) {
      if (rng.Bernoulli(density)) items.push_back(item);
    }
    db.Add(items);
  }
  return db;
}

TEST(SamplingTest, ExactlyMatchesFullMineOnRandomData) {
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    TransactionDatabase db = RandomDatabase(seed, 2000, 20, 0.25);
    MiningParams params;
    params.min_support = 0.05;
    SamplingOptions options;
    options.sample_fraction = 0.2;
    options.seed = seed;
    SamplingStats stats;
    auto sampled = MineWithSampling(db, params, options, &stats);
    auto full = MineFpGrowth(db, params);
    ASSERT_TRUE(sampled.ok());
    ASSERT_TRUE(full.ok());
    EXPECT_EQ(sampled->itemsets, full->itemsets) << "seed " << seed;
    EXPECT_GT(stats.sample_size, 200u);
    EXPECT_GT(stats.candidates_checked, 0u);
  }
}

TEST(SamplingTest, ExactOnQuestWorkload) {
  gen::QuestParams quest;
  quest.num_transactions = 3000;
  quest.num_items = 200;
  quest.num_patterns = 50;
  quest.avg_transaction_size = 8;
  quest.avg_pattern_size = 4;
  auto db = gen::GenerateQuestTransactions(quest, 9);
  ASSERT_TRUE(db.ok());
  MiningParams params;
  params.min_support = 0.02;
  SamplingOptions options;
  options.sample_fraction = 0.25;
  options.seed = 5;
  SamplingStats stats;
  auto sampled = MineWithSampling(*db, params, options, &stats);
  auto full = MineFpGrowth(*db, params);
  ASSERT_TRUE(sampled.ok());
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(sampled->itemsets, full->itemsets);
}

TEST(SamplingTest, ReportsStats) {
  TransactionDatabase db = RandomDatabase(7, 1000, 15, 0.3);
  MiningParams params;
  params.min_support = 0.1;
  SamplingOptions options;
  options.sample_fraction = 0.3;
  SamplingStats stats;
  auto result = MineWithSampling(db, params, options, &stats);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(stats.sample_size, 0u);
  // The verified candidate set includes at least the final answer.
  EXPECT_GE(stats.candidates_checked, result->itemsets.size());
}

TEST(SamplingTest, TinySampleStillExactViaFallbackOrBorder) {
  // A 1% sample of a small database will often miss patterns; the result
  // must still match the full mine (via border misses + fallback).
  TransactionDatabase db = RandomDatabase(11, 800, 12, 0.35);
  MiningParams params;
  params.min_support = 0.08;
  SamplingOptions options;
  options.sample_fraction = 0.02;
  options.threshold_scaling = 1.0;  // no safety margin: provoke misses
  SamplingStats stats;
  auto sampled = MineWithSampling(db, params, options, &stats);
  auto full = MineFpGrowth(db, params);
  ASSERT_TRUE(sampled.ok());
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(sampled->itemsets, full->itemsets);
}

TEST(SamplingTest, LowerScalingReducesMisses) {
  // Statistical tendency over seeds: the lowered threshold (0.5) should
  // produce no more misses in total than mining the sample at the full
  // threshold (1.0).
  size_t misses_loose = 0, misses_tight = 0;
  for (uint64_t seed = 0; seed < 8; ++seed) {
    TransactionDatabase db = RandomDatabase(100 + seed, 1500, 15, 0.3);
    MiningParams params;
    params.min_support = 0.06;
    SamplingOptions options;
    options.sample_fraction = 0.1;
    options.seed = seed;
    SamplingStats stats;
    options.threshold_scaling = 0.5;
    ASSERT_TRUE(MineWithSampling(db, params, options, &stats).ok());
    misses_loose += stats.border_misses;
    options.threshold_scaling = 1.0;
    ASSERT_TRUE(MineWithSampling(db, params, options, &stats).ok());
    misses_tight += stats.border_misses;
  }
  EXPECT_LE(misses_loose, misses_tight);
}

TEST(SamplingTest, ValidatesOptions) {
  TransactionDatabase db = RandomDatabase(1, 100, 8, 0.3);
  MiningParams params;
  params.min_support = 0.1;
  SamplingOptions options;
  options.sample_fraction = 0.0;
  EXPECT_FALSE(MineWithSampling(db, params, options).ok());
  options.sample_fraction = 1.0;
  EXPECT_FALSE(MineWithSampling(db, params, options).ok());
  options.sample_fraction = 0.5;
  options.threshold_scaling = 0.0;
  EXPECT_FALSE(MineWithSampling(db, params, options).ok());
  options.threshold_scaling = 1.5;
  EXPECT_FALSE(MineWithSampling(db, params, options).ok());
}

TEST(SamplingTest, OversizedFrequentBorderSetDoesNotForceFallback) {
  // Regression: border misses used to be counted before the
  // max_itemset_size filter, so a *frequent* border set larger than the
  // cap forced a full-database remine even though the capped result
  // provably cannot contain it or any superset. Items 0 and 1 always
  // co-occur, so with a cap of 1 the sample-frequent singletons put the
  // (frequent) pair {0, 1} on the negative border.
  TransactionDatabase db;
  for (int t = 0; t < 60; ++t) db.Add(std::vector<ItemId>{0, 1});
  for (int t = 0; t < 40; ++t) db.Add(std::vector<ItemId>{2});
  MiningParams params;
  params.min_support = 0.3;
  params.max_itemset_size = 1;
  SamplingOptions options;
  options.sample_fraction = 0.5;
  options.threshold_scaling = 0.5;
  options.seed = 3;
  SamplingStats stats;
  auto sampled = MineWithSampling(db, params, options, &stats);
  ASSERT_TRUE(sampled.ok());
  EXPECT_EQ(stats.border_misses, 0u);
  EXPECT_FALSE(stats.fell_back);
  auto full = MineFpGrowth(db, params);
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(sampled->itemsets, full->itemsets);
  ASSERT_EQ(sampled->itemsets.size(), 3u);  // exactly the singletons
}

TEST(SamplingTest, MaxItemsetSizeRespected) {
  TransactionDatabase db = RandomDatabase(13, 1000, 12, 0.4);
  MiningParams params;
  params.min_support = 0.1;
  params.max_itemset_size = 2;
  SamplingOptions options;
  options.sample_fraction = 0.3;
  auto sampled = MineWithSampling(db, params, options);
  auto full = MineFpGrowth(db, params);
  ASSERT_TRUE(sampled.ok());
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(sampled->itemsets, full->itemsets);
  for (const auto& itemset : sampled->itemsets) {
    EXPECT_LE(itemset.items.size(), 2u);
  }
}

}  // namespace
}  // namespace dmt::assoc
