// Cross-algorithm correctness: every miner — the four core algorithms in
// all their ablation variants plus sampling-based mining — must produce
// exactly the same frequent-itemset collection as a brute-force reference
// on random databases, across support thresholds (including exact
// absolute-count boundaries), database shapes (including tie-heavy
// supports), and max_itemset_size caps.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "assoc/apriori.h"
#include "assoc/eclat.h"
#include "assoc/fp_growth.h"
#include "assoc/sampling.h"
#include "core/rng.h"
#include "gen/quest.h"

namespace dmt::assoc {
namespace {

using core::ItemId;
using core::TransactionDatabase;

/// Exhaustive reference miner: enumerates itemsets depth-first, counting
/// supports by scanning the database. Only usable on small universes.
void BruteForceExtend(const TransactionDatabase& db, uint32_t min_count,
                      const Itemset& prefix, ItemId next_item,
                      std::vector<FrequentItemset>* out) {
  for (ItemId item = next_item; item < db.item_universe(); ++item) {
    Itemset candidate = prefix;
    candidate.push_back(item);
    uint32_t support = 0;
    for (size_t t = 0; t < db.size(); ++t) {
      if (IsSubsetOf(candidate, db.transaction(t))) ++support;
    }
    if (support >= min_count) {
      out->push_back({candidate, support});
      BruteForceExtend(db, min_count, candidate, item + 1, out);
    }
  }
}

std::vector<FrequentItemset> BruteForceMine(const TransactionDatabase& db,
                                            double min_support) {
  uint32_t min_count = AbsoluteMinSupport(db, min_support);
  std::vector<FrequentItemset> out;
  BruteForceExtend(db, min_count, {}, 0, &out);
  SortCanonical(&out);
  return out;
}

TransactionDatabase RandomDatabase(uint64_t seed, size_t transactions,
                                   size_t universe, double density) {
  core::Rng rng(seed);
  TransactionDatabase db;
  for (size_t t = 0; t < transactions; ++t) {
    std::vector<ItemId> items;
    for (ItemId item = 0; item < universe; ++item) {
      if (rng.Bernoulli(density)) items.push_back(item);
    }
    db.Add(items);
  }
  return db;
}

enum class Algorithm {
  kApriori,
  kAprioriSubsetLookup,
  kAprioriTid,
  kFpGrowth,
  kFpGrowthNoSinglePath,
  kEclat,
  kEclatBitset,
  kSampling,
  kSamplingTinySample,
};

std::string AlgorithmName(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kApriori:
      return "Apriori";
    case Algorithm::kAprioriSubsetLookup:
      return "AprioriSubsetLookup";
    case Algorithm::kAprioriTid:
      return "AprioriTid";
    case Algorithm::kFpGrowth:
      return "FpGrowth";
    case Algorithm::kFpGrowthNoSinglePath:
      return "FpGrowthNoSinglePath";
    case Algorithm::kEclat:
      return "Eclat";
    case Algorithm::kEclatBitset:
      return "EclatBitset";
    case Algorithm::kSampling:
      return "Sampling";
    case Algorithm::kSamplingTinySample:
      return "SamplingTinySample";
  }
  return "?";
}

core::Result<MiningResult> RunMiner(Algorithm algorithm,
                                    const TransactionDatabase& db,
                                    const MiningParams& params) {
  switch (algorithm) {
    case Algorithm::kApriori:
      return MineApriori(db, params);
    case Algorithm::kAprioriSubsetLookup: {
      AprioriOptions options;
      options.counting = AprioriOptions::CountingMethod::kSubsetLookup;
      return MineApriori(db, params, options);
    }
    case Algorithm::kAprioriTid:
      return MineAprioriTid(db, params);
    case Algorithm::kFpGrowth:
      return MineFpGrowth(db, params);
    case Algorithm::kFpGrowthNoSinglePath: {
      FpGrowthOptions options;
      options.single_path_optimization = false;
      return MineFpGrowth(db, params, options);
    }
    case Algorithm::kEclat:
      return MineEclat(db, params);
    case Algorithm::kEclatBitset: {
      EclatOptions options;
      options.representation = EclatOptions::TidsetRepr::kBitsets;
      return MineEclat(db, params, options);
    }
    case Algorithm::kSampling: {
      // Comfortable sample with a lowered threshold; the usual no-fallback
      // regime. Exactness must hold either way.
      SamplingOptions options;
      options.sample_fraction = 0.3;
      options.threshold_scaling = 0.5;
      options.seed = 23;
      return MineWithSampling(db, params, options);
    }
    case Algorithm::kSamplingTinySample: {
      // Starved sample at full threshold: border misses (and the full
      // remine they force) are the expected path.
      SamplingOptions options;
      options.sample_fraction = 0.05;
      options.threshold_scaling = 1.0;
      options.seed = 29;
      return MineWithSampling(db, params, options);
    }
  }
  return core::Status::Internal("unknown algorithm");
}

constexpr Algorithm kAllAlgorithms[] = {
    Algorithm::kApriori,        Algorithm::kAprioriSubsetLookup,
    Algorithm::kAprioriTid,     Algorithm::kFpGrowth,
    Algorithm::kFpGrowthNoSinglePath,
    Algorithm::kEclat,          Algorithm::kEclatBitset,
    Algorithm::kSampling,       Algorithm::kSamplingTinySample,
};

struct SweepCase {
  uint64_t seed;
  double min_support;
  double density;
};

using AgreementParam = std::tuple<Algorithm, SweepCase>;

class MinerAgreementTest : public testing::TestWithParam<AgreementParam> {};

TEST_P(MinerAgreementTest, MatchesBruteForceReference) {
  auto [algorithm, sweep] = GetParam();
  TransactionDatabase db =
      RandomDatabase(sweep.seed, 80, 10, sweep.density);
  MiningParams params;
  params.min_support = sweep.min_support;
  auto result = RunMiner(algorithm, db, params);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  auto expected = BruteForceMine(db, sweep.min_support);
  ASSERT_EQ(result->itemsets.size(), expected.size())
      << AlgorithmName(algorithm);
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(result->itemsets[i].items, expected[i].items) << i;
    EXPECT_EQ(result->itemsets[i].support, expected[i].support)
        << FormatItemset(expected[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MinerAgreementTest,
    testing::Combine(testing::ValuesIn(kAllAlgorithms),
                     // The last two thresholds hit the absolute-count
                     // boundary exactly on the 80-transaction database
                     // (0.125*80 = 10, 0.1*80 = 8), so itemsets with
                     // support equal to the rounded-up count are in.
                     testing::Values(SweepCase{1, 0.2, 0.3},
                                     SweepCase{2, 0.1, 0.3},
                                     SweepCase{3, 0.05, 0.2},
                                     SweepCase{4, 0.3, 0.5},
                                     SweepCase{5, 0.15, 0.4},
                                     SweepCase{6, 0.125, 0.4},
                                     SweepCase{7, 0.1, 0.5})),
    [](const testing::TestParamInfo<AgreementParam>& param_info) {
      return AlgorithmName(std::get<0>(param_info.param)) + "_seed" +
             std::to_string(std::get<1>(param_info.param).seed);
    });

class MinerQuestAgreementTest : public testing::TestWithParam<Algorithm> {};

TEST_P(MinerQuestAgreementTest, AgreesWithAprioriOnQuestWorkload) {
  gen::QuestParams quest;
  quest.num_transactions = 400;
  quest.avg_transaction_size = 6.0;
  quest.avg_pattern_size = 3.0;
  quest.num_items = 50;
  quest.num_patterns = 20;
  auto db = gen::GenerateQuestTransactions(quest, 7);
  ASSERT_TRUE(db.ok());
  MiningParams params;
  params.min_support = 0.02;
  auto reference = MineApriori(*db, params);
  ASSERT_TRUE(reference.ok());
  auto result = RunMiner(GetParam(), *db, params);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->itemsets.size(), reference->itemsets.size());
  EXPECT_TRUE(std::equal(result->itemsets.begin(), result->itemsets.end(),
                         reference->itemsets.begin()));
}

INSTANTIATE_TEST_SUITE_P(AllMiners, MinerQuestAgreementTest,
                         testing::ValuesIn(kAllAlgorithms),
                         [](const testing::TestParamInfo<Algorithm>&
                                param_info) {
                           return AlgorithmName(param_info.param);
                         });

TEST(MinerPropertiesTest, DownwardClosure) {
  TransactionDatabase db = RandomDatabase(11, 100, 12, 0.35);
  MiningParams params;
  params.min_support = 0.1;
  auto result = MineFpGrowth(db, params);
  ASSERT_TRUE(result.ok());
  std::map<Itemset, uint32_t> supports;
  for (const auto& itemset : result->itemsets) {
    supports[itemset.items] = itemset.support;
  }
  for (const auto& itemset : result->itemsets) {
    if (itemset.items.size() < 2) continue;
    for (size_t drop = 0; drop < itemset.items.size(); ++drop) {
      Itemset subset;
      for (size_t p = 0; p < itemset.items.size(); ++p) {
        if (p != drop) subset.push_back(itemset.items[p]);
      }
      auto it = supports.find(subset);
      ASSERT_NE(it, supports.end())
          << "missing subset of " << FormatItemset(itemset);
      EXPECT_GE(it->second, itemset.support);
    }
  }
}

TEST(MinerPropertiesTest, HigherSupportYieldsSubsetOfItemsets) {
  TransactionDatabase db = RandomDatabase(13, 100, 12, 0.35);
  MiningParams loose, tight;
  loose.min_support = 0.05;
  tight.min_support = 0.2;
  auto loose_result = MineApriori(db, loose);
  auto tight_result = MineApriori(db, tight);
  ASSERT_TRUE(loose_result.ok());
  ASSERT_TRUE(tight_result.ok());
  EXPECT_LE(tight_result->itemsets.size(), loose_result->itemsets.size());
  std::map<Itemset, uint32_t> loose_supports;
  for (const auto& itemset : loose_result->itemsets) {
    loose_supports[itemset.items] = itemset.support;
  }
  for (const auto& itemset : tight_result->itemsets) {
    auto it = loose_supports.find(itemset.items);
    ASSERT_NE(it, loose_supports.end());
    EXPECT_EQ(it->second, itemset.support);
  }
}

TEST(MinerPropertiesTest, MaxItemsetSizeRespected) {
  TransactionDatabase db = RandomDatabase(17, 80, 10, 0.5);
  MiningParams params;
  params.min_support = 0.1;
  params.max_itemset_size = 2;
  for (Algorithm algorithm : kAllAlgorithms) {
    auto result = RunMiner(algorithm, db, params);
    ASSERT_TRUE(result.ok());
    EXPECT_FALSE(result->itemsets.empty()) << AlgorithmName(algorithm);
    for (const auto& itemset : result->itemsets) {
      EXPECT_LE(itemset.items.size(), 2u) << AlgorithmName(algorithm);
    }
    // The truncated collection must equal the full one filtered to size<=2.
    MiningParams full = params;
    full.max_itemset_size = 0;
    auto full_result = RunMiner(algorithm, db, full);
    ASSERT_TRUE(full_result.ok());
    std::vector<FrequentItemset> filtered;
    for (const auto& itemset : full_result->itemsets) {
      if (itemset.items.size() <= 2) filtered.push_back(itemset);
    }
    EXPECT_EQ(result->itemsets, filtered) << AlgorithmName(algorithm);
  }
}

TEST(MinerPropertiesTest, EmptyDatabaseYieldsNothing) {
  TransactionDatabase db;
  MiningParams params;
  params.min_support = 0.5;
  for (Algorithm algorithm : kAllAlgorithms) {
    auto result = RunMiner(algorithm, db, params);
    ASSERT_TRUE(result.ok()) << AlgorithmName(algorithm);
    EXPECT_TRUE(result->itemsets.empty()) << AlgorithmName(algorithm);
  }
}

TEST(MinerPropertiesTest, SingleTransactionFullSupport) {
  TransactionDatabase db;
  db.Add(std::vector<ItemId>{1, 2, 3});
  MiningParams params;
  params.min_support = 1.0;
  for (Algorithm algorithm : kAllAlgorithms) {
    auto result = RunMiner(algorithm, db, params);
    ASSERT_TRUE(result.ok()) << AlgorithmName(algorithm);
    // All 7 non-empty subsets of {1,2,3} are frequent with support 1.
    EXPECT_EQ(result->itemsets.size(), 7u) << AlgorithmName(algorithm);
    for (const auto& itemset : result->itemsets) {
      EXPECT_EQ(itemset.support, 1u);
    }
  }
}

TEST(MinerPropertiesTest, InvalidParamsRejected) {
  TransactionDatabase db;
  db.Add(std::vector<ItemId>{1});
  MiningParams params;
  params.min_support = 0.0;
  for (Algorithm algorithm : kAllAlgorithms) {
    EXPECT_FALSE(RunMiner(algorithm, db, params).ok())
        << AlgorithmName(algorithm);
  }
}

TEST(MinerPropertiesTest, TieHeavySupportsAgreeAcrossMinersAndThreads) {
  // Blocks of identical transactions give many itemsets exactly equal
  // supports, stressing every tie-dependent ordering decision (FP-tree
  // header sorts, equivalence-class walks, canonical sort) — which must
  // never leak into results, at any thread count.
  TransactionDatabase db;
  const std::vector<std::vector<ItemId>> blocks = {
      {0, 1, 2}, {1, 2, 3}, {2, 3, 4}, {0, 2, 4}, {0, 1, 3, 4}};
  for (int repeat = 0; repeat < 12; ++repeat) {
    for (const auto& block : blocks) db.Add(block);
  }
  MiningParams params;
  params.min_support = 0.2;  // exactly 12 transactions: every block count
  auto expected = BruteForceMine(db, params.min_support);
  ASSERT_FALSE(expected.empty());
  for (Algorithm algorithm : kAllAlgorithms) {
    auto result = RunMiner(algorithm, db, params);
    ASSERT_TRUE(result.ok()) << AlgorithmName(algorithm);
    EXPECT_EQ(result->itemsets, expected) << AlgorithmName(algorithm);
  }
  for (size_t threads : {2u, 4u}) {
    params.num_threads = threads;
    for (Algorithm algorithm :
         {Algorithm::kFpGrowth, Algorithm::kEclat,
          Algorithm::kEclatBitset}) {
      auto result = RunMiner(algorithm, db, params);
      ASSERT_TRUE(result.ok()) << AlgorithmName(algorithm);
      EXPECT_EQ(result->itemsets, expected)
          << AlgorithmName(algorithm) << " at " << threads << " threads";
    }
  }
}

TEST(MinerPropertiesTest, FpGrowthAppliesSinglePathFastPathAtRoot) {
  // Regression: the root-level IsSinglePath() check used to select
  // between two identical branches, so the advertised fast path never ran
  // at the root. On a single-chain database the optimized run must emit
  // the path combinations directly — zero conditional trees — and match
  // the naive recursion exactly.
  TransactionDatabase db;
  for (int repeat = 0; repeat < 2; ++repeat) {
    db.Add(std::vector<ItemId>{0});
    db.Add(std::vector<ItemId>{0, 1});
    db.Add(std::vector<ItemId>{0, 1, 2});
    db.Add(std::vector<ItemId>{0, 1, 2, 3});
  }
  MiningParams params;
  params.min_support = 0.25;  // every chain item is frequent
  auto optimized = MineFpGrowth(db, params);
  FpGrowthOptions naive;
  naive.single_path_optimization = false;
  auto recursive = MineFpGrowth(db, params, naive);
  ASSERT_TRUE(optimized.ok());
  ASSERT_TRUE(recursive.ok());
  EXPECT_EQ(optimized->itemsets, recursive->itemsets);
  EXPECT_EQ(optimized->itemsets, BruteForceMine(db, params.min_support));
  // The fast path must actually have been taken at the root.
  EXPECT_EQ(optimized->conditional_trees_built, 0u);
  EXPECT_GT(recursive->conditional_trees_built, 0u);
  // A size cap must hold on the fast path too.
  params.max_itemset_size = 2;
  auto capped = MineFpGrowth(db, params);
  ASSERT_TRUE(capped.ok());
  EXPECT_EQ(capped->conditional_trees_built, 0u);
  for (const auto& itemset : capped->itemsets) {
    EXPECT_LE(itemset.items.size(), 2u);
  }
  EXPECT_EQ(capped->itemsets.size(), 10u);  // C(4,1) + C(4,2)
}

TEST(MinerPropertiesTest, PatternGrowthWorkCountersAreConsistent) {
  TransactionDatabase db = RandomDatabase(31, 200, 15, 0.3);
  MiningParams params;
  params.min_support = 0.05;
  auto fp = MineFpGrowth(db, params);
  ASSERT_TRUE(fp.ok());
  EXPECT_GT(fp->conditional_trees_built, 0u);
  EXPECT_GT(fp->fp_nodes_allocated, 0u);
  EXPECT_EQ(fp->tidset_intersections, 0u);
  auto eclat = MineEclat(db, params);
  ASSERT_TRUE(eclat.ok());
  EXPECT_GT(eclat->tidset_intersections, 0u);
  EXPECT_EQ(eclat->conditional_trees_built, 0u);
  // Both Eclat representations probe candidate-for-candidate identically.
  EclatOptions bitsets;
  bitsets.representation = EclatOptions::TidsetRepr::kBitsets;
  auto eclat_bitset = MineEclat(db, params, bitsets);
  ASSERT_TRUE(eclat_bitset.ok());
  EXPECT_EQ(eclat->tidset_intersections,
            eclat_bitset->tidset_intersections);
  // Apriori-family results carry no pattern-growth work.
  auto apriori = MineApriori(db, params);
  ASSERT_TRUE(apriori.ok());
  EXPECT_EQ(apriori->conditional_trees_built, 0u);
  EXPECT_EQ(apriori->fp_nodes_allocated, 0u);
  EXPECT_EQ(apriori->tidset_intersections, 0u);
}

TEST(MinerPropertiesTest, AprioriPassStatsConsistent) {
  TransactionDatabase db = RandomDatabase(23, 100, 10, 0.4);
  MiningParams params;
  params.min_support = 0.1;
  auto result = MineApriori(db, params);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->passes.empty());
  size_t total_frequent = 0;
  for (const auto& pass : result->passes) {
    EXPECT_GE(pass.candidates, pass.frequent);
    EXPECT_EQ(result->CountOfSize(pass.pass), pass.frequent);
    total_frequent += pass.frequent;
  }
  EXPECT_EQ(total_frequent, result->itemsets.size());
}

}  // namespace
}  // namespace dmt::assoc
