// Cross-algorithm correctness: all four miners must produce exactly the
// same frequent-itemset collection as a brute-force reference on random
// databases, across support thresholds and database shapes.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "assoc/apriori.h"
#include "assoc/eclat.h"
#include "assoc/fp_growth.h"
#include "core/rng.h"
#include "gen/quest.h"

namespace dmt::assoc {
namespace {

using core::ItemId;
using core::TransactionDatabase;

/// Exhaustive reference miner: enumerates itemsets depth-first, counting
/// supports by scanning the database. Only usable on small universes.
void BruteForceExtend(const TransactionDatabase& db, uint32_t min_count,
                      const Itemset& prefix, ItemId next_item,
                      std::vector<FrequentItemset>* out) {
  for (ItemId item = next_item; item < db.item_universe(); ++item) {
    Itemset candidate = prefix;
    candidate.push_back(item);
    uint32_t support = 0;
    for (size_t t = 0; t < db.size(); ++t) {
      if (IsSubsetOf(candidate, db.transaction(t))) ++support;
    }
    if (support >= min_count) {
      out->push_back({candidate, support});
      BruteForceExtend(db, min_count, candidate, item + 1, out);
    }
  }
}

std::vector<FrequentItemset> BruteForceMine(const TransactionDatabase& db,
                                            double min_support) {
  uint32_t min_count = AbsoluteMinSupport(db, min_support);
  std::vector<FrequentItemset> out;
  BruteForceExtend(db, min_count, {}, 0, &out);
  SortCanonical(&out);
  return out;
}

TransactionDatabase RandomDatabase(uint64_t seed, size_t transactions,
                                   size_t universe, double density) {
  core::Rng rng(seed);
  TransactionDatabase db;
  for (size_t t = 0; t < transactions; ++t) {
    std::vector<ItemId> items;
    for (ItemId item = 0; item < universe; ++item) {
      if (rng.Bernoulli(density)) items.push_back(item);
    }
    db.Add(items);
  }
  return db;
}

enum class Algorithm {
  kApriori,
  kAprioriSubsetLookup,
  kAprioriTid,
  kFpGrowth,
  kFpGrowthNoSinglePath,
  kEclat,
  kEclatBitset,
};

std::string AlgorithmName(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kApriori:
      return "Apriori";
    case Algorithm::kAprioriSubsetLookup:
      return "AprioriSubsetLookup";
    case Algorithm::kAprioriTid:
      return "AprioriTid";
    case Algorithm::kFpGrowth:
      return "FpGrowth";
    case Algorithm::kFpGrowthNoSinglePath:
      return "FpGrowthNoSinglePath";
    case Algorithm::kEclat:
      return "Eclat";
    case Algorithm::kEclatBitset:
      return "EclatBitset";
  }
  return "?";
}

core::Result<MiningResult> RunMiner(Algorithm algorithm,
                                    const TransactionDatabase& db,
                                    const MiningParams& params) {
  switch (algorithm) {
    case Algorithm::kApriori:
      return MineApriori(db, params);
    case Algorithm::kAprioriSubsetLookup: {
      AprioriOptions options;
      options.counting = AprioriOptions::CountingMethod::kSubsetLookup;
      return MineApriori(db, params, options);
    }
    case Algorithm::kAprioriTid:
      return MineAprioriTid(db, params);
    case Algorithm::kFpGrowth:
      return MineFpGrowth(db, params);
    case Algorithm::kFpGrowthNoSinglePath: {
      FpGrowthOptions options;
      options.single_path_optimization = false;
      return MineFpGrowth(db, params, options);
    }
    case Algorithm::kEclat:
      return MineEclat(db, params);
    case Algorithm::kEclatBitset: {
      EclatOptions options;
      options.representation = EclatOptions::TidsetRepr::kBitsets;
      return MineEclat(db, params, options);
    }
  }
  return core::Status::Internal("unknown algorithm");
}

constexpr Algorithm kAllAlgorithms[] = {
    Algorithm::kApriori,        Algorithm::kAprioriSubsetLookup,
    Algorithm::kAprioriTid,     Algorithm::kFpGrowth,
    Algorithm::kFpGrowthNoSinglePath,
    Algorithm::kEclat,          Algorithm::kEclatBitset,
};

struct SweepCase {
  uint64_t seed;
  double min_support;
  double density;
};

using AgreementParam = std::tuple<Algorithm, SweepCase>;

class MinerAgreementTest : public testing::TestWithParam<AgreementParam> {};

TEST_P(MinerAgreementTest, MatchesBruteForceReference) {
  auto [algorithm, sweep] = GetParam();
  TransactionDatabase db =
      RandomDatabase(sweep.seed, 80, 10, sweep.density);
  MiningParams params;
  params.min_support = sweep.min_support;
  auto result = RunMiner(algorithm, db, params);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  auto expected = BruteForceMine(db, sweep.min_support);
  ASSERT_EQ(result->itemsets.size(), expected.size())
      << AlgorithmName(algorithm);
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(result->itemsets[i].items, expected[i].items) << i;
    EXPECT_EQ(result->itemsets[i].support, expected[i].support)
        << FormatItemset(expected[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MinerAgreementTest,
    testing::Combine(testing::ValuesIn(kAllAlgorithms),
                     testing::Values(SweepCase{1, 0.2, 0.3},
                                     SweepCase{2, 0.1, 0.3},
                                     SweepCase{3, 0.05, 0.2},
                                     SweepCase{4, 0.3, 0.5},
                                     SweepCase{5, 0.15, 0.4})),
    [](const testing::TestParamInfo<AgreementParam>& param_info) {
      return AlgorithmName(std::get<0>(param_info.param)) + "_seed" +
             std::to_string(std::get<1>(param_info.param).seed);
    });

class MinerQuestAgreementTest : public testing::TestWithParam<Algorithm> {};

TEST_P(MinerQuestAgreementTest, AgreesWithAprioriOnQuestWorkload) {
  gen::QuestParams quest;
  quest.num_transactions = 400;
  quest.avg_transaction_size = 6.0;
  quest.avg_pattern_size = 3.0;
  quest.num_items = 50;
  quest.num_patterns = 20;
  auto db = gen::GenerateQuestTransactions(quest, 7);
  ASSERT_TRUE(db.ok());
  MiningParams params;
  params.min_support = 0.02;
  auto reference = MineApriori(*db, params);
  ASSERT_TRUE(reference.ok());
  auto result = RunMiner(GetParam(), *db, params);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->itemsets.size(), reference->itemsets.size());
  EXPECT_TRUE(std::equal(result->itemsets.begin(), result->itemsets.end(),
                         reference->itemsets.begin()));
}

INSTANTIATE_TEST_SUITE_P(AllMiners, MinerQuestAgreementTest,
                         testing::ValuesIn(kAllAlgorithms),
                         [](const testing::TestParamInfo<Algorithm>&
                                param_info) {
                           return AlgorithmName(param_info.param);
                         });

TEST(MinerPropertiesTest, DownwardClosure) {
  TransactionDatabase db = RandomDatabase(11, 100, 12, 0.35);
  MiningParams params;
  params.min_support = 0.1;
  auto result = MineFpGrowth(db, params);
  ASSERT_TRUE(result.ok());
  std::map<Itemset, uint32_t> supports;
  for (const auto& itemset : result->itemsets) {
    supports[itemset.items] = itemset.support;
  }
  for (const auto& itemset : result->itemsets) {
    if (itemset.items.size() < 2) continue;
    for (size_t drop = 0; drop < itemset.items.size(); ++drop) {
      Itemset subset;
      for (size_t p = 0; p < itemset.items.size(); ++p) {
        if (p != drop) subset.push_back(itemset.items[p]);
      }
      auto it = supports.find(subset);
      ASSERT_NE(it, supports.end())
          << "missing subset of " << FormatItemset(itemset);
      EXPECT_GE(it->second, itemset.support);
    }
  }
}

TEST(MinerPropertiesTest, HigherSupportYieldsSubsetOfItemsets) {
  TransactionDatabase db = RandomDatabase(13, 100, 12, 0.35);
  MiningParams loose, tight;
  loose.min_support = 0.05;
  tight.min_support = 0.2;
  auto loose_result = MineApriori(db, loose);
  auto tight_result = MineApriori(db, tight);
  ASSERT_TRUE(loose_result.ok());
  ASSERT_TRUE(tight_result.ok());
  EXPECT_LE(tight_result->itemsets.size(), loose_result->itemsets.size());
  std::map<Itemset, uint32_t> loose_supports;
  for (const auto& itemset : loose_result->itemsets) {
    loose_supports[itemset.items] = itemset.support;
  }
  for (const auto& itemset : tight_result->itemsets) {
    auto it = loose_supports.find(itemset.items);
    ASSERT_NE(it, loose_supports.end());
    EXPECT_EQ(it->second, itemset.support);
  }
}

TEST(MinerPropertiesTest, MaxItemsetSizeRespected) {
  TransactionDatabase db = RandomDatabase(17, 80, 10, 0.5);
  MiningParams params;
  params.min_support = 0.1;
  params.max_itemset_size = 2;
  for (Algorithm algorithm : kAllAlgorithms) {
    auto result = RunMiner(algorithm, db, params);
    ASSERT_TRUE(result.ok());
    EXPECT_FALSE(result->itemsets.empty()) << AlgorithmName(algorithm);
    for (const auto& itemset : result->itemsets) {
      EXPECT_LE(itemset.items.size(), 2u) << AlgorithmName(algorithm);
    }
    // The truncated collection must equal the full one filtered to size<=2.
    MiningParams full = params;
    full.max_itemset_size = 0;
    auto full_result = RunMiner(algorithm, db, full);
    ASSERT_TRUE(full_result.ok());
    std::vector<FrequentItemset> filtered;
    for (const auto& itemset : full_result->itemsets) {
      if (itemset.items.size() <= 2) filtered.push_back(itemset);
    }
    EXPECT_EQ(result->itemsets, filtered) << AlgorithmName(algorithm);
  }
}

TEST(MinerPropertiesTest, EmptyDatabaseYieldsNothing) {
  TransactionDatabase db;
  MiningParams params;
  params.min_support = 0.5;
  for (Algorithm algorithm : kAllAlgorithms) {
    auto result = RunMiner(algorithm, db, params);
    ASSERT_TRUE(result.ok()) << AlgorithmName(algorithm);
    EXPECT_TRUE(result->itemsets.empty()) << AlgorithmName(algorithm);
  }
}

TEST(MinerPropertiesTest, SingleTransactionFullSupport) {
  TransactionDatabase db;
  db.Add(std::vector<ItemId>{1, 2, 3});
  MiningParams params;
  params.min_support = 1.0;
  for (Algorithm algorithm : kAllAlgorithms) {
    auto result = RunMiner(algorithm, db, params);
    ASSERT_TRUE(result.ok()) << AlgorithmName(algorithm);
    // All 7 non-empty subsets of {1,2,3} are frequent with support 1.
    EXPECT_EQ(result->itemsets.size(), 7u) << AlgorithmName(algorithm);
    for (const auto& itemset : result->itemsets) {
      EXPECT_EQ(itemset.support, 1u);
    }
  }
}

TEST(MinerPropertiesTest, InvalidParamsRejected) {
  TransactionDatabase db;
  db.Add(std::vector<ItemId>{1});
  MiningParams params;
  params.min_support = 0.0;
  for (Algorithm algorithm : kAllAlgorithms) {
    EXPECT_FALSE(RunMiner(algorithm, db, params).ok())
        << AlgorithmName(algorithm);
  }
}

TEST(MinerPropertiesTest, AprioriPassStatsConsistent) {
  TransactionDatabase db = RandomDatabase(23, 100, 10, 0.4);
  MiningParams params;
  params.min_support = 0.1;
  auto result = MineApriori(db, params);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->passes.empty());
  size_t total_frequent = 0;
  for (const auto& pass : result->passes) {
    EXPECT_GE(pass.candidates, pass.frequent);
    EXPECT_EQ(result->CountOfSize(pass.pass), pass.frequent);
    total_frequent += pass.frequent;
  }
  EXPECT_EQ(total_frequent, result->itemsets.size());
}

}  // namespace
}  // namespace dmt::assoc
