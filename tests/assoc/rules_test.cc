#include "assoc/rules.h"

#include <gtest/gtest.h>

#include <limits>

#include "assoc/apriori.h"
#include "core/rng.h"

namespace dmt::assoc {
namespace {

using core::ItemId;
using core::TransactionDatabase;

/// A small database with a planted implication: item 1 almost always
/// implies item 2.
TransactionDatabase PlantedDatabase() {
  TransactionDatabase db;
  for (int i = 0; i < 8; ++i) db.Add(std::vector<ItemId>{1, 2});
  db.Add(std::vector<ItemId>{1});
  db.Add(std::vector<ItemId>{2});
  for (int i = 0; i < 10; ++i) db.Add(std::vector<ItemId>{3});
  return db;
}

MiningResult MineAll(const TransactionDatabase& db, double min_support) {
  MiningParams params;
  params.min_support = min_support;
  auto result = MineApriori(db, params);
  EXPECT_TRUE(result.ok());
  return std::move(result).value();
}

TEST(RulesTest, FindsPlantedImplication) {
  TransactionDatabase db = PlantedDatabase();
  MiningResult mining = MineAll(db, 0.05);
  RuleParams params;
  params.min_confidence = 0.8;
  auto rules = GenerateRules(mining, db.size(), params);
  ASSERT_TRUE(rules.ok());
  bool found = false;
  for (const auto& rule : *rules) {
    if (rule.antecedent == Itemset{1} && rule.consequent == Itemset{2}) {
      found = true;
      EXPECT_EQ(rule.support_count, 8u);
      EXPECT_NEAR(rule.confidence, 8.0 / 9.0, 1e-12);
      EXPECT_NEAR(rule.support, 8.0 / 20.0, 1e-12);
      EXPECT_NEAR(rule.lift, (8.0 / 9.0) / (9.0 / 20.0), 1e-12);
    }
  }
  EXPECT_TRUE(found);
}

TEST(RulesTest, ConfidenceThresholdFilters) {
  TransactionDatabase db = PlantedDatabase();
  MiningResult mining = MineAll(db, 0.05);
  RuleParams strict;
  strict.min_confidence = 0.95;
  auto rules = GenerateRules(mining, db.size(), strict);
  ASSERT_TRUE(rules.ok());
  for (const auto& rule : *rules) {
    EXPECT_GE(rule.confidence, 0.95 - 1e-12);
  }
}

TEST(RulesTest, LiftThresholdFilters) {
  TransactionDatabase db = PlantedDatabase();
  MiningResult mining = MineAll(db, 0.05);
  RuleParams params;
  params.min_confidence = 0.1;
  params.min_lift = 1.5;
  auto rules = GenerateRules(mining, db.size(), params);
  ASSERT_TRUE(rules.ok());
  for (const auto& rule : *rules) {
    EXPECT_GE(rule.lift, 1.5 - 1e-9);
  }
}

TEST(RulesTest, RulesSortedByConfidenceThenLift) {
  TransactionDatabase db = PlantedDatabase();
  MiningResult mining = MineAll(db, 0.05);
  RuleParams params;
  params.min_confidence = 0.1;
  auto rules = GenerateRules(mining, db.size(), params);
  ASSERT_TRUE(rules.ok());
  for (size_t i = 1; i < rules->size(); ++i) {
    const auto& prev = (*rules)[i - 1];
    const auto& cur = (*rules)[i];
    EXPECT_TRUE(prev.confidence > cur.confidence ||
                (prev.confidence == cur.confidence &&
                 prev.lift >= cur.lift));
  }
}

TEST(RulesTest, EveryRulePartitionsItsItemset) {
  core::Rng rng(5);
  TransactionDatabase db;
  for (int t = 0; t < 60; ++t) {
    std::vector<ItemId> items;
    for (ItemId item = 0; item < 8; ++item) {
      if (rng.Bernoulli(0.45)) items.push_back(item);
    }
    db.Add(items);
  }
  MiningResult mining = MineAll(db, 0.1);
  RuleParams params;
  params.min_confidence = 0.4;
  auto rules = GenerateRules(mining, db.size(), params);
  ASSERT_TRUE(rules.ok());
  EXPECT_FALSE(rules->empty());
  for (const auto& rule : *rules) {
    EXPECT_FALSE(rule.antecedent.empty());
    EXPECT_FALSE(rule.consequent.empty());
    // Antecedent and consequent are disjoint.
    Itemset intersection;
    std::set_intersection(rule.antecedent.begin(), rule.antecedent.end(),
                          rule.consequent.begin(), rule.consequent.end(),
                          std::back_inserter(intersection));
    EXPECT_TRUE(intersection.empty());
    // Confidence is consistent with raw supports recomputed from the db.
    Itemset all;
    std::set_union(rule.antecedent.begin(), rule.antecedent.end(),
                   rule.consequent.begin(), rule.consequent.end(),
                   std::back_inserter(all));
    uint32_t support_all = 0, support_antecedent = 0;
    for (size_t t = 0; t < db.size(); ++t) {
      if (IsSubsetOf(all, db.transaction(t))) ++support_all;
      if (IsSubsetOf(rule.antecedent, db.transaction(t))) {
        ++support_antecedent;
      }
    }
    EXPECT_EQ(rule.support_count, support_all);
    EXPECT_NEAR(rule.confidence,
                static_cast<double>(support_all) / support_antecedent,
                1e-12);
  }
}

TEST(RulesTest, MultiItemConsequentsGenerated) {
  // Items 1,2,3 always together: rules like {1} => {2,3} must appear.
  TransactionDatabase db;
  for (int i = 0; i < 10; ++i) db.Add(std::vector<ItemId>{1, 2, 3});
  db.Add(std::vector<ItemId>{4});
  MiningResult mining = MineAll(db, 0.5);
  RuleParams params;
  params.min_confidence = 0.9;
  auto rules = GenerateRules(mining, db.size(), params);
  ASSERT_TRUE(rules.ok());
  bool found = false;
  for (const auto& rule : *rules) {
    if (rule.antecedent == Itemset{1} &&
        rule.consequent == Itemset{2, 3}) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(RulesTest, NoRulesFromSingletonItemsets) {
  TransactionDatabase db;
  db.Add(std::vector<ItemId>{1});
  db.Add(std::vector<ItemId>{2});
  MiningResult mining = MineAll(db, 0.5);
  RuleParams params;
  auto rules = GenerateRules(mining, db.size(), params);
  ASSERT_TRUE(rules.ok());
  EXPECT_TRUE(rules->empty());
}

TEST(RulesTest, ValidatesParameters) {
  MiningResult mining;
  RuleParams params;
  params.min_confidence = 0.0;
  EXPECT_FALSE(GenerateRules(mining, 10, params).ok());
  params.min_confidence = 1.5;
  EXPECT_FALSE(GenerateRules(mining, 10, params).ok());
  params.min_confidence = 0.5;
  params.min_lift = -1.0;
  EXPECT_FALSE(GenerateRules(mining, 10, params).ok());
  params.min_lift = 0.0;
  EXPECT_FALSE(GenerateRules(mining, 0, params).ok());
}

TEST(RulesTest, ValidateRejectsNaNThresholds) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  MiningResult mining;
  RuleParams params;
  params.min_confidence = nan;
  EXPECT_FALSE(GenerateRules(mining, 10, params).ok());
  params.min_confidence = 0.5;
  params.min_lift = nan;
  EXPECT_FALSE(GenerateRules(mining, 10, params).ok());
}

TEST(RulesTest, RuleExactlyAtConfidenceAndLiftThresholdIncluded) {
  // conf({1} => {2}) = 3/4 exactly; supp({2}) = 3/4, so lift = 1 exactly.
  // Both land on the threshold and must pass the accept-lenient epsilon
  // deterministically (the comparisons at rules.cc use `+ 1e-12 <`).
  TransactionDatabase db;
  for (int i = 0; i < 3; ++i) db.Add(std::vector<ItemId>{1, 2});
  db.Add(std::vector<ItemId>{1});
  MiningResult mining = MineAll(db, 0.25);
  RuleParams params;
  params.min_confidence = 0.75;
  params.min_lift = 1.0;
  auto rules = GenerateRules(mining, db.size(), params);
  ASSERT_TRUE(rules.ok());
  bool found = false;
  for (const auto& rule : *rules) {
    if (rule.antecedent == Itemset{1} && rule.consequent == Itemset{2}) {
      found = true;
      EXPECT_EQ(rule.confidence, 0.75);
      EXPECT_EQ(rule.lift, 1.0);
    }
  }
  EXPECT_TRUE(found) << "rule exactly at both thresholds was dropped";
  // Nudging either threshold past the rule's exact value excludes it.
  params.min_confidence = 0.75 + 1e-9;
  auto stricter = GenerateRules(mining, db.size(), params);
  ASSERT_TRUE(stricter.ok());
  for (const auto& rule : *stricter) {
    EXPECT_FALSE(rule.antecedent == Itemset{1} &&
                 rule.consequent == Itemset{2});
  }
  params.min_confidence = 0.75;
  params.min_lift = 1.0 + 1e-9;
  auto lift_strict = GenerateRules(mining, db.size(), params);
  ASSERT_TRUE(lift_strict.ok());
  for (const auto& rule : *lift_strict) {
    EXPECT_FALSE(rule.antecedent == Itemset{1} &&
                 rule.consequent == Itemset{2});
  }
}

TEST(RulesTest, LeverageComputedCorrectly) {
  TransactionDatabase db = PlantedDatabase();
  MiningResult mining = MineAll(db, 0.05);
  RuleParams params;
  params.min_confidence = 0.1;
  auto rules = GenerateRules(mining, db.size(), params);
  ASSERT_TRUE(rules.ok());
  ASSERT_FALSE(rules->empty());
  for (const auto& rule : *rules) {
    uint32_t antecedent_support = 0, consequent_support = 0;
    for (size_t t = 0; t < db.size(); ++t) {
      if (IsSubsetOf(rule.antecedent, db.transaction(t))) {
        ++antecedent_support;
      }
      if (IsSubsetOf(rule.consequent, db.transaction(t))) {
        ++consequent_support;
      }
    }
    double n = static_cast<double>(db.size());
    double expected = rule.support - (antecedent_support / n) *
                                         (consequent_support / n);
    EXPECT_NEAR(rule.leverage, expected, 1e-12) << FormatRule(rule);
    EXPECT_GE(rule.leverage, -0.25 - 1e-12);
    EXPECT_LE(rule.leverage, 0.25 + 1e-12);
  }
}


TEST(RulesTest, ConvictionComputedCorrectly) {
  TransactionDatabase db = PlantedDatabase();
  MiningResult mining = MineAll(db, 0.05);
  RuleParams params;
  params.min_confidence = 0.5;
  auto rules = GenerateRules(mining, db.size(), params);
  ASSERT_TRUE(rules.ok());
  for (const auto& rule : *rules) {
    // Recompute conviction from the rule's own fields.
    uint32_t consequent_support = 0;
    for (size_t t = 0; t < db.size(); ++t) {
      if (IsSubsetOf(rule.consequent, db.transaction(t))) {
        ++consequent_support;
      }
    }
    double consequent_fraction =
        static_cast<double>(consequent_support) /
        static_cast<double>(db.size());
    if (rule.confidence >= 1.0 - 1e-12) {
      EXPECT_GE(rule.conviction, 1e11);
    } else {
      EXPECT_NEAR(rule.conviction,
                  (1.0 - consequent_fraction) / (1.0 - rule.confidence),
                  1e-9);
    }
    EXPECT_GT(rule.conviction, 0.0);
  }
}

TEST(RulesTest, ConvictionAboveOneForPositivelyCorrelatedRules) {
  TransactionDatabase db = PlantedDatabase();
  MiningResult mining = MineAll(db, 0.05);
  RuleParams params;
  params.min_confidence = 0.8;
  params.min_lift = 1.2;
  auto rules = GenerateRules(mining, db.size(), params);
  ASSERT_TRUE(rules.ok());
  ASSERT_FALSE(rules->empty());
  for (const auto& rule : *rules) {
    EXPECT_GT(rule.conviction, 1.0) << FormatRule(rule);
  }
}

TEST(RulesTest, FormatRuleReadable) {
  AssociationRule rule;
  rule.antecedent = {0};
  rule.consequent = {1};
  rule.support = 0.25;
  rule.confidence = 0.8;
  rule.lift = 1.6;
  rule.conviction = 2.5;
  rule.leverage = 0.0938;
  EXPECT_EQ(FormatRule(rule),
            "{0} => {1} (supp=0.2500, conf=0.800, lift=1.60, conv=2.50, "
            "lev=0.0938)");
  core::ItemDictionary dict;
  dict.GetOrAdd("beer");
  dict.GetOrAdd("chips");
  EXPECT_EQ(FormatRule(rule, &dict),
            "{beer} => {chips} (supp=0.2500, conf=0.800, lift=1.60, "
            "conv=2.50, lev=0.0938)");
}

TEST(RulesTest, FormatRulePrintsCappedConvictionAsInf) {
  AssociationRule rule;
  rule.antecedent = {0};
  rule.consequent = {1};
  rule.support = 0.5;
  rule.confidence = 1.0;
  rule.lift = 2.0;
  rule.conviction = 1e12;  // the cap FormatRule renders as "inf"
  rule.leverage = 0.25;
  EXPECT_EQ(FormatRule(rule),
            "{0} => {1} (supp=0.5000, conf=1.000, lift=2.00, conv=inf, "
            "lev=0.2500)");
}

}  // namespace
}  // namespace dmt::assoc
