#include "assoc/postprocess.h"

#include <gtest/gtest.h>

#include "assoc/apriori.h"
#include "core/rng.h"

namespace dmt::assoc {
namespace {

using core::ItemId;
using core::TransactionDatabase;

std::vector<FrequentItemset> MineAll(const TransactionDatabase& db,
                                     double min_support) {
  MiningParams params;
  params.min_support = min_support;
  auto result = MineApriori(db, params);
  EXPECT_TRUE(result.ok());
  return std::move(result).value().itemsets;
}

TEST(PostprocessTest, MaximalKeepsOnlyTopItemsets) {
  TransactionDatabase db;
  for (int i = 0; i < 4; ++i) db.Add(std::vector<ItemId>{1, 2, 3});
  auto all = MineAll(db, 0.5);
  EXPECT_EQ(all.size(), 7u);
  auto maximal = FilterMaximal(all);
  ASSERT_EQ(maximal.size(), 1u);
  EXPECT_EQ(maximal[0].items, (Itemset{1, 2, 3}));
}

TEST(PostprocessTest, ClosedKeepsSupportChanges) {
  // {1,2} occurs 4 times, {1} alone 2 more times: {1} is closed (support 6
  // vs superset 4), {2} is not (every 2 comes with 1).
  TransactionDatabase db;
  for (int i = 0; i < 4; ++i) db.Add(std::vector<ItemId>{1, 2});
  for (int i = 0; i < 2; ++i) db.Add(std::vector<ItemId>{1});
  auto all = MineAll(db, 0.1);
  auto closed = FilterClosed(all);
  std::vector<Itemset> closed_sets;
  for (const auto& itemset : closed) closed_sets.push_back(itemset.items);
  EXPECT_EQ(closed_sets,
            (std::vector<Itemset>{{1}, {1, 2}}));
}

TEST(PostprocessTest, MaximalSubsetOfClosed) {
  core::Rng rng(3);
  TransactionDatabase db;
  for (int t = 0; t < 80; ++t) {
    std::vector<ItemId> items;
    for (ItemId item = 0; item < 10; ++item) {
      if (rng.Bernoulli(0.4)) items.push_back(item);
    }
    db.Add(items);
  }
  auto all = MineAll(db, 0.1);
  auto maximal = FilterMaximal(all);
  auto closed = FilterClosed(all);
  EXPECT_LE(maximal.size(), closed.size());
  EXPECT_LE(closed.size(), all.size());
  // Every maximal itemset is closed.
  for (const auto& m : maximal) {
    bool found = false;
    for (const auto& c : closed) {
      if (c.items == m.items) found = true;
    }
    EXPECT_TRUE(found) << FormatItemset(m);
  }
}

TEST(PostprocessTest, MaximalDefinitionHolds) {
  core::Rng rng(9);
  TransactionDatabase db;
  for (int t = 0; t < 60; ++t) {
    std::vector<ItemId> items;
    for (ItemId item = 0; item < 9; ++item) {
      if (rng.Bernoulli(0.45)) items.push_back(item);
    }
    db.Add(items);
  }
  auto all = MineAll(db, 0.15);
  auto maximal = FilterMaximal(all);
  for (const auto& m : maximal) {
    for (const auto& other : all) {
      if (other.items.size() == m.items.size() + 1) {
        EXPECT_FALSE(IsSubsetOf(m.items, other.items))
            << FormatItemset(m) << " has frequent superset "
            << FormatItemset(other);
      }
    }
  }
  // And every dropped itemset has a frequent immediate superset.
  for (const auto& itemset : all) {
    bool is_maximal = false;
    for (const auto& m : maximal) {
      if (m.items == itemset.items) is_maximal = true;
    }
    if (is_maximal) continue;
    bool has_superset = false;
    for (const auto& other : all) {
      if (other.items.size() == itemset.items.size() + 1 &&
          IsSubsetOf(itemset.items, other.items)) {
        has_superset = true;
      }
    }
    EXPECT_TRUE(has_superset) << FormatItemset(itemset);
  }
}

TEST(PostprocessTest, ClosedPreservesAllSupportInformation) {
  // Known property: the support of any frequent itemset equals the maximum
  // support among closed supersets.
  core::Rng rng(15);
  TransactionDatabase db;
  for (int t = 0; t < 60; ++t) {
    std::vector<ItemId> items;
    for (ItemId item = 0; item < 8; ++item) {
      if (rng.Bernoulli(0.5)) items.push_back(item);
    }
    db.Add(items);
  }
  auto all = MineAll(db, 0.1);
  auto closed = FilterClosed(all);
  for (const auto& itemset : all) {
    uint32_t best = 0;
    for (const auto& c : closed) {
      if (IsSubsetOf(itemset.items, c.items)) {
        best = std::max(best, c.support);
      }
    }
    EXPECT_EQ(best, itemset.support) << FormatItemset(itemset);
  }
}

TEST(PostprocessTest, EmptyInputYieldsEmptyOutput) {
  EXPECT_TRUE(FilterMaximal({}).empty());
  EXPECT_TRUE(FilterClosed({}).empty());
}

TEST(PostprocessTest, SingletonsOnlyAllMaximal) {
  std::vector<FrequentItemset> all = {{{1}, 3}, {{2}, 4}};
  EXPECT_EQ(FilterMaximal(all).size(), 2u);
  EXPECT_EQ(FilterClosed(all).size(), 2u);
}

}  // namespace
}  // namespace dmt::assoc
