// Property sweep: Apriori must return identical results for every
// hash-tree geometry (fanout x leaf size) and for the subset-lookup
// counting method — counting strategy is a pure performance knob.
#include <gtest/gtest.h>

#include "assoc/apriori.h"
#include "assoc/fp_growth.h"
#include "core/rng.h"

namespace dmt::assoc {
namespace {

using core::ItemId;
using core::TransactionDatabase;

TransactionDatabase RandomDatabase(uint64_t seed) {
  core::Rng rng(seed);
  TransactionDatabase db;
  for (int t = 0; t < 150; ++t) {
    std::vector<ItemId> items;
    for (ItemId item = 0; item < 30; ++item) {
      if (rng.Bernoulli(0.2)) items.push_back(item);
    }
    db.Add(items);
  }
  return db;
}

struct Geometry {
  size_t fanout;
  size_t leaf_size;
};

class HashTreeGeometryTest : public testing::TestWithParam<Geometry> {};

TEST_P(HashTreeGeometryTest, GeometryDoesNotChangeResults) {
  const Geometry& geometry = GetParam();
  for (uint64_t seed : {1u, 2u}) {
    TransactionDatabase db = RandomDatabase(seed);
    MiningParams params;
    params.min_support = 0.05;
    auto reference = MineFpGrowth(db, params);
    ASSERT_TRUE(reference.ok());
    AprioriOptions options;
    options.hash_tree_fanout = geometry.fanout;
    options.hash_tree_leaf_size = geometry.leaf_size;
    auto result = MineApriori(db, params, options);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->itemsets, reference->itemsets)
        << "fanout " << geometry.fanout << " leaf " << geometry.leaf_size
        << " seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, HashTreeGeometryTest,
    testing::Values(Geometry{2, 1}, Geometry{2, 64}, Geometry{8, 1},
                    Geometry{8, 16}, Geometry{128, 4}, Geometry{128, 256},
                    Geometry{1024, 16}),
    [](const testing::TestParamInfo<Geometry>& info) {
      return "fanout" + std::to_string(info.param.fanout) + "_leaf" +
             std::to_string(info.param.leaf_size);
    });

TEST(HashTreeGeometryTest, InvalidGeometriesRejected) {
  TransactionDatabase db = RandomDatabase(3);
  MiningParams params;
  params.min_support = 0.1;
  AprioriOptions options;
  options.hash_tree_fanout = 1;
  EXPECT_FALSE(MineApriori(db, params, options).ok());
  options = AprioriOptions{};
  options.hash_tree_leaf_size = 0;
  EXPECT_FALSE(MineApriori(db, params, options).ok());
}

}  // namespace
}  // namespace dmt::assoc
