#include "assoc/candidate_gen.h"

#include <gtest/gtest.h>

namespace dmt::assoc {
namespace {

TEST(CandidateGenTest, JoinsOnSharedPrefix) {
  // L2 = {1,2},{1,3},{2,3} -> candidate {1,2,3} survives pruning.
  std::vector<Itemset> prev = {{1, 2}, {1, 3}, {2, 3}};
  auto result = GenerateCandidates(prev);
  ASSERT_EQ(result.candidates.size(), 1u);
  EXPECT_EQ(result.candidates[0], (Itemset{1, 2, 3}));
}

TEST(CandidateGenTest, PrunesWhenSubsetInfrequent) {
  // {2,3} missing -> {1,2,3} must be pruned.
  std::vector<Itemset> prev = {{1, 2}, {1, 3}};
  auto result = GenerateCandidates(prev);
  EXPECT_TRUE(result.candidates.empty());
}

TEST(CandidateGenTest, SinglesJoinWithoutPruning) {
  std::vector<Itemset> prev = {{1}, {4}, {7}};
  auto result = GenerateCandidates(prev);
  ASSERT_EQ(result.candidates.size(), 3u);
  EXPECT_EQ(result.candidates[0], (Itemset{1, 4}));
  EXPECT_EQ(result.candidates[1], (Itemset{1, 7}));
  EXPECT_EQ(result.candidates[2], (Itemset{4, 7}));
}

TEST(CandidateGenTest, RecordsParents) {
  std::vector<Itemset> prev = {{1}, {4}, {7}};
  auto result = GenerateCandidates(prev, /*record_parents=*/true);
  ASSERT_EQ(result.parents.size(), 3u);
  EXPECT_EQ(result.parents[0], std::make_pair(0u, 1u));
  EXPECT_EQ(result.parents[1], std::make_pair(0u, 2u));
  EXPECT_EQ(result.parents[2], std::make_pair(1u, 2u));
}

TEST(CandidateGenTest, NoParentsUnlessRequested) {
  std::vector<Itemset> prev = {{1}, {2}};
  auto result = GenerateCandidates(prev);
  EXPECT_TRUE(result.parents.empty());
}

TEST(CandidateGenTest, EmptyInputYieldsNothing) {
  auto result = GenerateCandidates({});
  EXPECT_TRUE(result.candidates.empty());
}

TEST(CandidateGenTest, DifferentPrefixesDoNotJoin) {
  std::vector<Itemset> prev = {{1, 2}, {3, 4}};
  auto result = GenerateCandidates(prev);
  EXPECT_TRUE(result.candidates.empty());
}

TEST(CandidateGenTest, CandidatesComeOutSorted) {
  std::vector<Itemset> prev = {{1, 2}, {1, 3}, {1, 4}, {2, 3}, {2, 4},
                               {3, 4}};
  auto result = GenerateCandidates(prev);
  // All four 3-subsets of {1,2,3,4} survive.
  ASSERT_EQ(result.candidates.size(), 4u);
  for (size_t i = 1; i < result.candidates.size(); ++i) {
    EXPECT_LT(result.candidates[i - 1], result.candidates[i]);
  }
}

TEST(CandidateGenTest, DeepPruningChecksAllSubsets) {
  // Join of {1,2,3} and {1,2,4} gives {1,2,3,4}; subsets {1,3,4} and
  // {2,3,4} must both be present for it to survive.
  std::vector<Itemset> with_all = {{1, 2, 3}, {1, 2, 4}, {1, 3, 4},
                                   {2, 3, 4}};
  EXPECT_EQ(GenerateCandidates(with_all).candidates.size(), 1u);
  std::vector<Itemset> missing_one = {{1, 2, 3}, {1, 2, 4}, {1, 3, 4}};
  EXPECT_TRUE(GenerateCandidates(missing_one).candidates.empty());
}

}  // namespace
}  // namespace dmt::assoc
