#include "assoc/itemset.h"

#include <gtest/gtest.h>

namespace dmt::assoc {
namespace {

using core::TransactionDatabase;

TEST(ItemsetTest, AbsoluteMinSupportRoundsUp) {
  TransactionDatabase db;
  for (int i = 0; i < 10; ++i) db.Add(std::vector<core::ItemId>{0});
  EXPECT_EQ(AbsoluteMinSupport(db, 0.25), 3u);   // ceil(2.5)
  EXPECT_EQ(AbsoluteMinSupport(db, 0.3), 3u);    // exactly 3
  EXPECT_EQ(AbsoluteMinSupport(db, 0.01), 1u);   // at least 1
  EXPECT_EQ(AbsoluteMinSupport(db, 1.0), 10u);
}

TEST(ItemsetTest, AbsoluteMinSupportExactFractionNotBumped) {
  TransactionDatabase db;
  for (int i = 0; i < 1000; ++i) db.Add(std::vector<core::ItemId>{0});
  // 0.5% of 1000 = 5 exactly; floating noise must not push it to 6.
  EXPECT_EQ(AbsoluteMinSupport(db, 0.005), 5u);
}

TEST(ItemsetTest, SortCanonicalBySizeThenLex) {
  std::vector<FrequentItemset> itemsets = {
      {{2, 3}, 1}, {{1}, 5}, {{0, 9}, 2}, {{4}, 3}, {{0, 1, 2}, 1}};
  SortCanonical(&itemsets);
  EXPECT_EQ(itemsets[0].items, (Itemset{1}));
  EXPECT_EQ(itemsets[1].items, (Itemset{4}));
  EXPECT_EQ(itemsets[2].items, (Itemset{0, 9}));
  EXPECT_EQ(itemsets[3].items, (Itemset{2, 3}));
  EXPECT_EQ(itemsets[4].items, (Itemset{0, 1, 2}));
}

TEST(ItemsetTest, IsSubsetOf) {
  Itemset small = {1, 3};
  Itemset big = {0, 1, 2, 3, 4};
  EXPECT_TRUE(IsSubsetOf(small, big));
  EXPECT_FALSE(IsSubsetOf(big, small));
  EXPECT_TRUE(IsSubsetOf({}, big));
  EXPECT_TRUE(IsSubsetOf(big, big));
  EXPECT_FALSE(IsSubsetOf(Itemset{5}, big));
}

TEST(ItemsetTest, HashEqualItemsetsCollide) {
  ItemsetHash hash;
  EXPECT_EQ(hash({1, 2, 3}), hash({1, 2, 3}));
  EXPECT_NE(hash({1, 2, 3}), hash({1, 2, 4}));
  EXPECT_NE(hash({1, 2}), hash({2, 1}));  // order-sensitive by design
}

TEST(ItemsetTest, CountOfSize) {
  MiningResult result;
  result.itemsets = {{{1}, 2}, {{2}, 2}, {{1, 2}, 1}};
  EXPECT_EQ(result.CountOfSize(1), 2u);
  EXPECT_EQ(result.CountOfSize(2), 1u);
  EXPECT_EQ(result.CountOfSize(3), 0u);
}

TEST(ItemsetTest, MiningParamsValidation) {
  MiningParams params;
  params.min_support = 0.0;
  EXPECT_FALSE(params.Validate().ok());
  params.min_support = 1.5;
  EXPECT_FALSE(params.Validate().ok());
  params.min_support = 0.5;
  EXPECT_TRUE(params.Validate().ok());
}

TEST(ItemsetTest, FormatItemsetWithAndWithoutDictionary) {
  FrequentItemset itemset{{0, 1}, 7};
  EXPECT_EQ(FormatItemset(itemset), "{0, 1} (support=7)");
  core::ItemDictionary dict;
  dict.GetOrAdd("milk");
  dict.GetOrAdd("bread");
  EXPECT_EQ(FormatItemset(itemset, &dict), "{milk, bread} (support=7)");
}

}  // namespace
}  // namespace dmt::assoc
