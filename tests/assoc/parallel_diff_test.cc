// Differential tests for the parallel association kernels: mining with
// num_threads in {2, 4} must produce results bit-identical to the serial
// run on seeded Quest workloads — same frequent itemsets, same supports,
// same per-pass census, same work counters. Covers the counting miners
// (Apriori/AprioriTid), the pattern-growth miners (FP-Growth/Eclat), and
// the sampling verification scan.
#include <gtest/gtest.h>

#include "assoc/apriori.h"
#include "assoc/eclat.h"
#include "assoc/fp_growth.h"
#include "assoc/sampling.h"
#include "core/check.h"
#include "gen/quest.h"
#include "obs/metrics.h"

namespace dmt::assoc {
namespace {

core::TransactionDatabase Workload(uint64_t seed) {
  gen::QuestParams params;
  params.num_transactions = 2000;
  params.avg_transaction_size = 8;
  params.avg_pattern_size = 3;
  params.num_items = 200;
  params.num_patterns = 100;
  auto db = gen::GenerateQuestTransactions(params, seed);
  DMT_CHECK(db.ok());
  return std::move(db).value();
}

void ExpectSameResult(const MiningResult& serial,
                      const MiningResult& parallel, size_t threads) {
  EXPECT_EQ(serial.itemsets, parallel.itemsets)
      << "itemsets diverged at num_threads=" << threads;
  ASSERT_EQ(serial.passes.size(), parallel.passes.size());
  for (size_t p = 0; p < serial.passes.size(); ++p) {
    EXPECT_EQ(serial.passes[p].pass, parallel.passes[p].pass);
    EXPECT_EQ(serial.passes[p].candidates, parallel.passes[p].candidates);
    EXPECT_EQ(serial.passes[p].frequent, parallel.passes[p].frequent);
  }
  EXPECT_EQ(serial.conditional_trees_built, parallel.conditional_trees_built)
      << "conditional_trees_built diverged at num_threads=" << threads;
  EXPECT_EQ(serial.fp_nodes_allocated, parallel.fp_nodes_allocated)
      << "fp_nodes_allocated diverged at num_threads=" << threads;
  EXPECT_EQ(serial.tidset_intersections, parallel.tidset_intersections)
      << "tidset_intersections diverged at num_threads=" << threads;
}

TEST(AprioriParallelDiffTest, HashTreeCountingMatchesSerial) {
  auto db = Workload(/*seed=*/41);
  MiningParams params;
  params.min_support = 0.01;
  auto serial = MineApriori(db, params);
  ASSERT_TRUE(serial.ok());
  EXPECT_FALSE(serial->itemsets.empty());
  for (size_t threads : {2u, 4u}) {
    params.num_threads = threads;
    auto parallel = MineApriori(db, params);
    ASSERT_TRUE(parallel.ok());
    ExpectSameResult(*serial, *parallel, threads);
  }
}

TEST(AprioriParallelDiffTest, SubsetLookupCountingMatchesSerial) {
  auto db = Workload(/*seed=*/42);
  MiningParams params;
  params.min_support = 0.015;
  AprioriOptions options;
  options.counting = AprioriOptions::CountingMethod::kSubsetLookup;
  auto serial = MineApriori(db, params, options);
  ASSERT_TRUE(serial.ok());
  EXPECT_FALSE(serial->itemsets.empty());
  for (size_t threads : {2u, 4u}) {
    params.num_threads = threads;
    auto parallel = MineApriori(db, params, options);
    ASSERT_TRUE(parallel.ok());
    ExpectSameResult(*serial, *parallel, threads);
  }
}

TEST(AprioriParallelDiffTest, AprioriTidMatchesSerial) {
  auto db = Workload(/*seed=*/43);
  MiningParams params;
  params.min_support = 0.01;
  auto serial = MineAprioriTid(db, params);
  ASSERT_TRUE(serial.ok());
  EXPECT_FALSE(serial->itemsets.empty());
  for (size_t threads : {2u, 4u}) {
    params.num_threads = threads;
    auto parallel = MineAprioriTid(db, params);
    ASSERT_TRUE(parallel.ok());
    ExpectSameResult(*serial, *parallel, threads);
  }
}

TEST(FpGrowthParallelDiffTest, ConditionalTreeMiningMatchesSerial) {
  auto db = Workload(/*seed=*/45);
  MiningParams params;
  params.min_support = 0.005;
  auto serial = MineFpGrowth(db, params);
  ASSERT_TRUE(serial.ok());
  EXPECT_FALSE(serial->itemsets.empty());
  EXPECT_GT(serial->conditional_trees_built, 0u);
  EXPECT_GT(serial->fp_nodes_allocated, 0u);
  for (size_t threads : {2u, 4u}) {
    params.num_threads = threads;
    auto parallel = MineFpGrowth(db, params);
    ASSERT_TRUE(parallel.ok());
    ExpectSameResult(*serial, *parallel, threads);
  }
}

TEST(FpGrowthParallelDiffTest, NoSinglePathOptimizationMatchesSerial) {
  auto db = Workload(/*seed=*/46);
  MiningParams params;
  params.min_support = 0.0075;
  FpGrowthOptions options;
  options.single_path_optimization = false;
  auto serial = MineFpGrowth(db, params, options);
  ASSERT_TRUE(serial.ok());
  EXPECT_FALSE(serial->itemsets.empty());
  for (size_t threads : {2u, 4u}) {
    params.num_threads = threads;
    auto parallel = MineFpGrowth(db, params, options);
    ASSERT_TRUE(parallel.ok());
    ExpectSameResult(*serial, *parallel, threads);
  }
}

TEST(FpGrowthParallelDiffTest, MaxItemsetSizeCapMatchesSerial) {
  auto db = Workload(/*seed=*/47);
  MiningParams params;
  params.min_support = 0.005;
  params.max_itemset_size = 3;
  auto serial = MineFpGrowth(db, params);
  ASSERT_TRUE(serial.ok());
  for (size_t threads : {2u, 4u}) {
    params.num_threads = threads;
    auto parallel = MineFpGrowth(db, params);
    ASSERT_TRUE(parallel.ok());
    ExpectSameResult(*serial, *parallel, threads);
  }
}

TEST(EclatParallelDiffTest, SortedVectorWalkMatchesSerial) {
  auto db = Workload(/*seed=*/48);
  MiningParams params;
  params.min_support = 0.005;
  auto serial = MineEclat(db, params);
  ASSERT_TRUE(serial.ok());
  EXPECT_FALSE(serial->itemsets.empty());
  EXPECT_GT(serial->tidset_intersections, 0u);
  for (size_t threads : {2u, 4u}) {
    params.num_threads = threads;
    auto parallel = MineEclat(db, params);
    ASSERT_TRUE(parallel.ok());
    ExpectSameResult(*serial, *parallel, threads);
  }
}

TEST(EclatParallelDiffTest, BitsetWalkMatchesSerial) {
  auto db = Workload(/*seed=*/49);
  MiningParams params;
  params.min_support = 0.005;
  EclatOptions options;
  options.representation = EclatOptions::TidsetRepr::kBitsets;
  auto serial = MineEclat(db, params, options);
  ASSERT_TRUE(serial.ok());
  EXPECT_FALSE(serial->itemsets.empty());
  for (size_t threads : {2u, 4u}) {
    params.num_threads = threads;
    auto parallel = MineEclat(db, params, options);
    ASSERT_TRUE(parallel.ok());
    ExpectSameResult(*serial, *parallel, threads);
  }
}

TEST(SamplingParallelDiffTest, VerificationScanMatchesSerial) {
  auto db = Workload(/*seed=*/50);
  MiningParams params;
  params.min_support = 0.01;
  SamplingOptions options;
  options.sample_fraction = 0.25;
  options.seed = 17;
  SamplingStats serial_stats;
  auto serial = MineWithSampling(db, params, options, &serial_stats);
  ASSERT_TRUE(serial.ok());
  EXPECT_FALSE(serial->itemsets.empty());
  for (size_t threads : {2u, 4u}) {
    params.num_threads = threads;
    SamplingStats parallel_stats;
    auto parallel = MineWithSampling(db, params, options, &parallel_stats);
    ASSERT_TRUE(parallel.ok());
    ExpectSameResult(*serial, *parallel, threads);
    EXPECT_EQ(serial_stats.sample_size, parallel_stats.sample_size);
    EXPECT_EQ(serial_stats.candidates_checked,
              parallel_stats.candidates_checked);
    EXPECT_EQ(serial_stats.border_misses, parallel_stats.border_misses);
    EXPECT_EQ(serial_stats.fell_back, parallel_stats.fell_back);
  }
}

TEST(AprioriParallelDiffTest, ParallelRunsAreRepeatable) {
  // Two parallel runs with the same thread count must also agree with each
  // other (scheduling must never leak into results).
  auto db = Workload(/*seed=*/44);
  MiningParams params;
  params.min_support = 0.01;
  params.num_threads = 4;
  auto first = MineApriori(db, params);
  auto second = MineApriori(db, params);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->itemsets, second->itemsets);
}

TEST(FpGrowthParallelDiffTest, ParallelRunsAreRepeatable) {
  auto db = Workload(/*seed=*/51);
  MiningParams params;
  params.min_support = 0.005;
  params.num_threads = 4;
  auto first = MineFpGrowth(db, params);
  auto second = MineFpGrowth(db, params);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  ExpectSameResult(*first, *second, 4);
}

TEST(EclatParallelDiffTest, ParallelRunsAreRepeatable) {
  auto db = Workload(/*seed=*/52);
  MiningParams params;
  params.min_support = 0.005;
  params.num_threads = 4;
  auto first = MineEclat(db, params);
  auto second = MineEclat(db, params);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  ExpectSameResult(*first, *second, 4);
}

TEST(AprioriParallelDiffTest, MoreThreadsThanTransactions) {
  // Degenerate chunking: thread count exceeding the database size must not
  // change results (chunks cap at one transaction each).
  core::TransactionDatabase tiny;
  tiny.Add(std::vector<core::ItemId>{0, 1, 2});
  tiny.Add(std::vector<core::ItemId>{0, 1, 3});
  tiny.Add(std::vector<core::ItemId>{0, 2, 3});
  MiningParams params;
  params.min_support = 0.5;
  auto serial = MineApriori(tiny, params);
  params.num_threads = 8;
  auto parallel = MineApriori(tiny, params);
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(parallel.ok());
  EXPECT_EQ(serial->itemsets, parallel->itemsets);
}

TEST(PatternGrowthParallelDiffTest, MoreThreadsThanTopLevelTasks) {
  // The pattern-growth task ranges are header entries / root classes, of
  // which this database has only four; 8 threads must change nothing.
  core::TransactionDatabase tiny;
  tiny.Add(std::vector<core::ItemId>{0, 1, 2});
  tiny.Add(std::vector<core::ItemId>{0, 1, 3});
  tiny.Add(std::vector<core::ItemId>{0, 2, 3});
  MiningParams params;
  params.min_support = 0.5;
  auto fp_serial = MineFpGrowth(tiny, params);
  auto eclat_serial = MineEclat(tiny, params);
  params.num_threads = 8;
  auto fp_parallel = MineFpGrowth(tiny, params);
  auto eclat_parallel = MineEclat(tiny, params);
  ASSERT_TRUE(fp_serial.ok());
  ASSERT_TRUE(fp_parallel.ok());
  ASSERT_TRUE(eclat_serial.ok());
  ASSERT_TRUE(eclat_parallel.ok());
  ExpectSameResult(*fp_serial, *fp_parallel, 8);
  ExpectSameResult(*eclat_serial, *eclat_parallel, 8);
}

TEST(RegistryParallelDiffTest, CounterTotalsIdenticalAcrossThreadCounts) {
  // The metrics registry is under the same determinism contract as the
  // results: after identical work, every counter total must be
  // bit-identical at every thread count — including more threads than
  // top-level tasks (7 threads against a 3-transaction database).
  auto db = Workload(/*seed=*/53);
  core::TransactionDatabase tiny;
  tiny.Add(std::vector<core::ItemId>{0, 1, 2});
  tiny.Add(std::vector<core::ItemId>{0, 1, 3});
  tiny.Add(std::vector<core::ItemId>{0, 2, 3});
  std::vector<std::pair<std::string, uint64_t>> baseline;
  for (size_t threads : {0u, 1u, 2u, 7u}) {
    obs::Registry::Global().Reset();
    MiningParams params;
    params.min_support = 0.01;
    params.num_threads = threads;
    ASSERT_TRUE(MineApriori(db, params).ok());
    ASSERT_TRUE(MineFpGrowth(db, params).ok());
    ASSERT_TRUE(MineEclat(db, params).ok());
    MiningParams tiny_params;
    tiny_params.min_support = 0.5;
    tiny_params.num_threads = threads;
    ASSERT_TRUE(MineApriori(tiny, tiny_params).ok());
    auto snapshot = obs::Registry::Global().CounterSnapshot();
    if (threads == 0) {
      baseline = snapshot;
      EXPECT_FALSE(baseline.empty());
    } else {
      EXPECT_EQ(snapshot, baseline)
          << "registry totals diverged at num_threads=" << threads;
    }
  }
}

}  // namespace
}  // namespace dmt::assoc
