// Differential tests for the parallel Apriori kernels: mining with
// num_threads in {2, 4} must produce results bit-identical to the serial
// run on seeded Quest workloads — same frequent itemsets, same supports,
// same per-pass census.
#include <gtest/gtest.h>

#include "assoc/apriori.h"
#include "core/check.h"
#include "gen/quest.h"

namespace dmt::assoc {
namespace {

core::TransactionDatabase Workload(uint64_t seed) {
  gen::QuestParams params;
  params.num_transactions = 2000;
  params.avg_transaction_size = 8;
  params.avg_pattern_size = 3;
  params.num_items = 200;
  params.num_patterns = 100;
  auto db = gen::GenerateQuestTransactions(params, seed);
  DMT_CHECK(db.ok());
  return std::move(db).value();
}

void ExpectSameResult(const MiningResult& serial,
                      const MiningResult& parallel, size_t threads) {
  EXPECT_EQ(serial.itemsets, parallel.itemsets)
      << "itemsets diverged at num_threads=" << threads;
  ASSERT_EQ(serial.passes.size(), parallel.passes.size());
  for (size_t p = 0; p < serial.passes.size(); ++p) {
    EXPECT_EQ(serial.passes[p].pass, parallel.passes[p].pass);
    EXPECT_EQ(serial.passes[p].candidates, parallel.passes[p].candidates);
    EXPECT_EQ(serial.passes[p].frequent, parallel.passes[p].frequent);
  }
}

TEST(AprioriParallelDiffTest, HashTreeCountingMatchesSerial) {
  auto db = Workload(/*seed=*/41);
  MiningParams params;
  params.min_support = 0.01;
  auto serial = MineApriori(db, params);
  ASSERT_TRUE(serial.ok());
  EXPECT_FALSE(serial->itemsets.empty());
  for (size_t threads : {2u, 4u}) {
    params.num_threads = threads;
    auto parallel = MineApriori(db, params);
    ASSERT_TRUE(parallel.ok());
    ExpectSameResult(*serial, *parallel, threads);
  }
}

TEST(AprioriParallelDiffTest, SubsetLookupCountingMatchesSerial) {
  auto db = Workload(/*seed=*/42);
  MiningParams params;
  params.min_support = 0.015;
  AprioriOptions options;
  options.counting = AprioriOptions::CountingMethod::kSubsetLookup;
  auto serial = MineApriori(db, params, options);
  ASSERT_TRUE(serial.ok());
  EXPECT_FALSE(serial->itemsets.empty());
  for (size_t threads : {2u, 4u}) {
    params.num_threads = threads;
    auto parallel = MineApriori(db, params, options);
    ASSERT_TRUE(parallel.ok());
    ExpectSameResult(*serial, *parallel, threads);
  }
}

TEST(AprioriParallelDiffTest, AprioriTidMatchesSerial) {
  auto db = Workload(/*seed=*/43);
  MiningParams params;
  params.min_support = 0.01;
  auto serial = MineAprioriTid(db, params);
  ASSERT_TRUE(serial.ok());
  EXPECT_FALSE(serial->itemsets.empty());
  for (size_t threads : {2u, 4u}) {
    params.num_threads = threads;
    auto parallel = MineAprioriTid(db, params);
    ASSERT_TRUE(parallel.ok());
    ExpectSameResult(*serial, *parallel, threads);
  }
}

TEST(AprioriParallelDiffTest, ParallelRunsAreRepeatable) {
  // Two parallel runs with the same thread count must also agree with each
  // other (scheduling must never leak into results).
  auto db = Workload(/*seed=*/44);
  MiningParams params;
  params.min_support = 0.01;
  params.num_threads = 4;
  auto first = MineApriori(db, params);
  auto second = MineApriori(db, params);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->itemsets, second->itemsets);
}

TEST(AprioriParallelDiffTest, MoreThreadsThanTransactions) {
  // Degenerate chunking: thread count exceeding the database size must not
  // change results (chunks cap at one transaction each).
  core::TransactionDatabase tiny;
  tiny.Add(std::vector<core::ItemId>{0, 1, 2});
  tiny.Add(std::vector<core::ItemId>{0, 1, 3});
  tiny.Add(std::vector<core::ItemId>{0, 2, 3});
  MiningParams params;
  params.min_support = 0.5;
  auto serial = MineApriori(tiny, params);
  params.num_threads = 8;
  auto parallel = MineApriori(tiny, params);
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(parallel.ok());
  EXPECT_EQ(serial->itemsets, parallel->itemsets);
}

}  // namespace
}  // namespace dmt::assoc
