#include "assoc/hash_tree.h"

#include <gtest/gtest.h>

#include "core/rng.h"

namespace dmt::assoc {
namespace {

using core::ItemId;
using core::TransactionDatabase;

std::vector<uint32_t> CountWithTree(const std::vector<Itemset>& candidates,
                                    size_t k,
                                    const TransactionDatabase& db,
                                    size_t fanout = 8,
                                    size_t leaf_size = 2) {
  HashTree tree(candidates, k, fanout, leaf_size);
  std::vector<uint32_t> counts(candidates.size(), 0);
  tree.CountDatabase(db, counts);
  return counts;
}

std::vector<uint32_t> CountBrute(const std::vector<Itemset>& candidates,
                                 const TransactionDatabase& db) {
  std::vector<uint32_t> counts(candidates.size(), 0);
  for (size_t t = 0; t < db.size(); ++t) {
    for (size_t c = 0; c < candidates.size(); ++c) {
      if (IsSubsetOf(candidates[c], db.transaction(t))) ++counts[c];
    }
  }
  return counts;
}

TEST(HashTreeTest, CountsSimpleCandidates) {
  std::vector<Itemset> candidates = {{1, 2}, {1, 3}, {2, 3}};
  TransactionDatabase db;
  db.Add(std::vector<ItemId>{1, 2, 3});
  db.Add(std::vector<ItemId>{1, 2});
  db.Add(std::vector<ItemId>{3});
  auto counts = CountWithTree(candidates, 2, db);
  EXPECT_EQ(counts, (std::vector<uint32_t>{2, 1, 1}));
}

TEST(HashTreeTest, ShortTransactionsContributeNothing) {
  std::vector<Itemset> candidates = {{1, 2, 3}};
  TransactionDatabase db;
  db.Add(std::vector<ItemId>{1, 2});
  auto counts = CountWithTree(candidates, 3, db);
  EXPECT_EQ(counts[0], 0u);
}

TEST(HashTreeTest, CollidingBucketsDoNotDoubleCount) {
  // fanout 2 forces heavy bucket collisions; counts must still be exact.
  std::vector<Itemset> candidates = {{0, 2}, {0, 4}, {2, 4}, {1, 3}};
  TransactionDatabase db;
  db.Add(std::vector<ItemId>{0, 2, 4});  // contains {0,2},{0,4},{2,4}
  auto counts = CountWithTree(candidates, 2, db, /*fanout=*/2,
                              /*leaf_size=*/1);
  EXPECT_EQ(counts, (std::vector<uint32_t>{1, 1, 1, 0}));
}

TEST(HashTreeTest, MatchesBruteForceOnRandomData) {
  core::Rng rng(99);
  for (int round = 0; round < 5; ++round) {
    // Random database over 12 items.
    TransactionDatabase db;
    for (int t = 0; t < 60; ++t) {
      std::vector<ItemId> items;
      for (ItemId item = 0; item < 12; ++item) {
        if (rng.Bernoulli(0.4)) items.push_back(item);
      }
      db.Add(items);
    }
    // Random candidate 3-itemsets (distinct).
    std::vector<Itemset> candidates;
    for (int c = 0; c < 30; ++c) {
      auto pick = rng.SampleWithoutReplacement(12, 3);
      Itemset itemset(pick.begin(), pick.end());
      std::sort(itemset.begin(), itemset.end());
      if (std::find(candidates.begin(), candidates.end(), itemset) ==
          candidates.end()) {
        candidates.push_back(itemset);
      }
    }
    auto tree_counts = CountWithTree(candidates, 3, db, 4, 2);
    auto brute_counts = CountBrute(candidates, db);
    EXPECT_EQ(tree_counts, brute_counts) << "round " << round;
  }
}

TEST(HashTreeTest, LargeLeafNeverSplits) {
  std::vector<Itemset> candidates = {{1, 2}, {3, 4}, {5, 6}};
  HashTree tree(candidates, 2, 8, /*max_leaf_size=*/100);
  EXPECT_EQ(tree.num_nodes(), 1u);
}

TEST(HashTreeTest, SmallLeafSplits) {
  std::vector<Itemset> candidates;
  for (ItemId i = 0; i < 20; ++i) candidates.push_back({i, i + 20});
  HashTree tree(candidates, 2, 8, /*max_leaf_size=*/1);
  EXPECT_GT(tree.num_nodes(), 1u);
}

TEST(HashTreeTest, IdenticalHashPathsStayInOneLeaf) {
  // Items congruent mod fanout collide at every level; the leaf at depth k
  // cannot split further and must still count correctly.
  std::vector<Itemset> candidates = {{0, 8}, {8, 16}, {0, 16}};
  TransactionDatabase db;
  db.Add(std::vector<ItemId>{0, 8, 16});
  auto counts = CountWithTree(candidates, 2, db, 8, 1);
  EXPECT_EQ(counts, (std::vector<uint32_t>{1, 1, 1}));
}

}  // namespace
}  // namespace dmt::assoc
