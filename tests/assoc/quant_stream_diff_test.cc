// Differential tests for the quantitative and streaming miners under the
// determinism contract: quantitative rule sets must be bit-identical
// across all four frequent-itemset miners and across thread counts
// {0, 1, 2, 7}, and the streaming window mine must equal the exact miners
// on the same window at every thread count.
#include <gtest/gtest.h>

#include <cstring>

#include "assoc/apriori.h"
#include "assoc/eclat.h"
#include "assoc/fp_growth.h"
#include "assoc/quantitative.h"
#include "assoc/streaming.h"
#include "core/check.h"
#include "gen/agrawal.h"
#include "gen/quest.h"

namespace dmt::assoc {
namespace {

core::Dataset QuantWorkload() {
  gen::AgrawalParams params;
  params.function = 2;
  params.num_records = 1500;
  params.perturbation = 0.05;
  auto dataset = gen::GenerateAgrawal(params, /*seed=*/71);
  DMT_CHECK(dataset.ok());
  return std::move(dataset).value();
}

core::TransactionDatabase StreamBatch(uint64_t seed) {
  gen::QuestParams params;
  params.num_transactions = 400;
  params.avg_transaction_size = 8;
  params.avg_pattern_size = 3;
  params.num_items = 80;
  params.num_patterns = 40;
  auto db = gen::GenerateQuestTransactions(params, seed);
  DMT_CHECK(db.ok());
  return std::move(db).value();
}

/// Bit-identity over every rule field (operator== only compares the two
/// itemsets): doubles are compared as raw bit patterns.
void ExpectBitIdenticalRules(const std::vector<AssociationRule>& expected,
                             const std::vector<AssociationRule>& actual,
                             const std::string& label) {
  ASSERT_EQ(expected.size(), actual.size()) << label;
  for (size_t r = 0; r < expected.size(); ++r) {
    const AssociationRule& e = expected[r];
    const AssociationRule& a = actual[r];
    EXPECT_EQ(e.antecedent, a.antecedent) << label << " rule " << r;
    EXPECT_EQ(e.consequent, a.consequent) << label << " rule " << r;
    EXPECT_EQ(e.support_count, a.support_count) << label << " rule " << r;
    for (auto field : {&AssociationRule::support,
                       &AssociationRule::confidence, &AssociationRule::lift,
                       &AssociationRule::conviction,
                       &AssociationRule::leverage}) {
      EXPECT_EQ(std::memcmp(&(e.*field), &(a.*field), sizeof(double)), 0)
          << label << " rule " << r << " measure bits diverged";
    }
  }
}

TEST(QuantDiffTest, AllMinersAndThreadCountsBitIdentical) {
  core::Dataset dataset = QuantWorkload();
  QuantParams params;
  params.min_support = 0.1;
  params.num_bins = 6;
  params.min_confidence = 0.6;
  auto baseline =
      MineQuantitativeRules(dataset, params, QuantMiner::kFpGrowth);
  ASSERT_TRUE(baseline.ok());
  EXPECT_FALSE(baseline->rules.empty());
  for (QuantMiner miner : {QuantMiner::kApriori, QuantMiner::kAprioriTid,
                           QuantMiner::kFpGrowth, QuantMiner::kEclat}) {
    for (size_t threads : {0u, 1u, 2u, 7u}) {
      params.num_threads = threads;
      auto result = MineQuantitativeRules(dataset, params, miner);
      ASSERT_TRUE(result.ok());
      std::string label = "miner=" + std::to_string(static_cast<int>(miner)) +
                          " threads=" + std::to_string(threads);
      EXPECT_EQ(baseline->items, result->items) << label;
      EXPECT_EQ(baseline->itemsets_mined, result->itemsets_mined) << label;
      EXPECT_EQ(baseline->itemsets_attribute_distinct,
                result->itemsets_attribute_distinct)
          << label;
      EXPECT_EQ(std::memcmp(&baseline->partial_completeness,
                            &result->partial_completeness, sizeof(double)),
                0)
          << label;
      ExpectBitIdenticalRules(baseline->rules, result->rules, label);
    }
  }
}

TEST(StreamingDiffTest, WindowMineMatchesEveryExactMinerAtEveryThreadCount) {
  StreamingParams stream_params;
  stream_params.min_support = 0.025;
  stream_params.window_batches = 3;

  MiningResult baseline;
  StreamingWindowStats baseline_stats;
  for (size_t threads : {0u, 1u, 2u, 7u}) {
    stream_params.num_threads = threads;
    auto miner = StreamingMiner::Create(stream_params);
    ASSERT_TRUE(miner.ok());
    for (uint64_t b = 0; b < 5; ++b) {
      ASSERT_TRUE(miner->AddBatch(StreamBatch(61 + b)).ok());
    }
    StreamingWindowStats stats;
    auto streamed = miner->MineWindow(&stats);
    ASSERT_TRUE(streamed.ok());
    EXPECT_FALSE(streamed->itemsets.empty());
    if (threads == 0) {
      baseline = *streamed;
      baseline_stats = stats;
      // The window result must equal all four exact miners on the window.
      core::TransactionDatabase window = miner->WindowTransactions();
      MiningParams exact_params;
      exact_params.min_support = stream_params.min_support;
      auto apriori = MineApriori(window, exact_params);
      auto apriori_tid = MineAprioriTid(window, exact_params);
      auto fp = MineFpGrowth(window, exact_params);
      auto eclat = MineEclat(window, exact_params);
      ASSERT_TRUE(apriori.ok());
      ASSERT_TRUE(apriori_tid.ok());
      ASSERT_TRUE(fp.ok());
      ASSERT_TRUE(eclat.ok());
      EXPECT_EQ(streamed->itemsets, apriori->itemsets);
      EXPECT_EQ(streamed->itemsets, apriori_tid->itemsets);
      EXPECT_EQ(streamed->itemsets, fp->itemsets);
      EXPECT_EQ(streamed->itemsets, eclat->itemsets);
    } else {
      EXPECT_EQ(baseline.itemsets, streamed->itemsets)
          << "streaming itemsets diverged at num_threads=" << threads;
      EXPECT_EQ(baseline_stats.summary_candidates, stats.summary_candidates)
          << "candidate bar diverged at num_threads=" << threads;
      EXPECT_EQ(baseline_stats.candidates_checked, stats.candidates_checked)
          << "verification set diverged at num_threads=" << threads;
      EXPECT_EQ(baseline_stats.border_misses, stats.border_misses);
      EXPECT_EQ(baseline_stats.fell_back, stats.fell_back);
    }
  }
}

TEST(StreamingDiffTest, RepeatedRunsAreBitIdentical) {
  StreamingParams params;
  params.min_support = 0.03;
  params.num_threads = 4;
  auto run = [&]() {
    auto miner = StreamingMiner::Create(params);
    DMT_CHECK(miner.ok());
    for (uint64_t b = 0; b < 3; ++b) {
      DMT_CHECK(miner->AddBatch(StreamBatch(81 + b)).ok());
    }
    auto result = miner->MineWindow();
    DMT_CHECK(result.ok());
    return std::move(result->itemsets);
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace dmt::assoc
