#include "assoc/streaming.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

#include "assoc/fp_growth.h"
#include "assoc/itemset.h"
#include "core/check.h"
#include "gen/quest.h"

namespace dmt::assoc {
namespace {

using core::ItemId;
using core::TransactionDatabase;

TransactionDatabase QuestBatch(uint64_t seed, size_t transactions = 300) {
  gen::QuestParams params;
  params.num_transactions = transactions;
  params.avg_transaction_size = 8;
  params.avg_pattern_size = 3;
  params.num_items = 60;
  params.num_patterns = 30;
  auto db = gen::GenerateQuestTransactions(params, seed);
  DMT_CHECK(db.ok());
  return std::move(db).value();
}

uint32_t TrueCount(const TransactionDatabase& db, const Itemset& items) {
  uint32_t count = 0;
  for (size_t t = 0; t < db.size(); ++t) {
    if (IsSubsetOf(items, db.transaction(t))) ++count;
  }
  return count;
}

TEST(StreamingParamsTest, ValidatesRanges) {
  StreamingParams params;
  EXPECT_TRUE(params.Validate().ok());
  params.min_support = 0.0;
  EXPECT_FALSE(params.Validate().ok());
  params = StreamingParams();
  params.error = params.min_support;  // ε must stay strictly below s
  EXPECT_FALSE(params.Validate().ok());
  params = StreamingParams();
  params.error = -0.001;
  EXPECT_FALSE(params.Validate().ok());
  params = StreamingParams();
  params.window_batches = 0;
  EXPECT_FALSE(params.Validate().ok());
}

TEST(StreamingParamsTest, ValidateRejectsNaNThresholds) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  StreamingParams params;
  params.min_support = nan;
  EXPECT_FALSE(params.Validate().ok());
  params = StreamingParams();
  params.error = nan;
  EXPECT_FALSE(params.Validate().ok());
}

TEST(StreamingParamsTest, ZeroErrorSelectsTenthOfSupport) {
  StreamingParams params;
  params.min_support = 0.05;
  EXPECT_NEAR(params.EffectiveError(), 0.005, 1e-15);
  params.error = 0.01;
  EXPECT_EQ(params.EffectiveError(), 0.01);
}

TEST(StreamingMinerTest, WindowSlidesAndEvictsOldestBatch) {
  StreamingParams params;
  params.min_support = 0.05;
  params.window_batches = 3;
  auto miner = StreamingMiner::Create(params);
  ASSERT_TRUE(miner.ok());
  for (uint64_t b = 0; b < 5; ++b) {
    ASSERT_TRUE(miner->AddBatch(QuestBatch(100 + b, 200 + 10 * b)).ok());
  }
  EXPECT_EQ(miner->batches_seen(), 5u);
  // Window = batches 2, 3, 4 of sizes 220, 230, 240.
  EXPECT_EQ(miner->window_transactions(), 220u + 230u + 240u);
  EXPECT_EQ(miner->WindowTransactions().size(), 220u + 230u + 240u);
}

TEST(StreamingMinerTest, EmptyBatchesAreIgnored) {
  auto miner = StreamingMiner::Create(StreamingParams());
  ASSERT_TRUE(miner.ok());
  ASSERT_TRUE(miner->AddBatch(TransactionDatabase()).ok());
  EXPECT_EQ(miner->batches_seen(), 0u);
  EXPECT_EQ(miner->window_transactions(), 0u);
}

TEST(StreamingMinerTest, EmptyWindowMinesToNothing) {
  auto miner = StreamingMiner::Create(StreamingParams());
  ASSERT_TRUE(miner.ok());
  StreamingWindowStats stats;
  auto result = miner->MineWindow(&stats);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->itemsets.empty());
  EXPECT_EQ(stats.window_transactions, 0u);
}

TEST(StreamingMinerTest, MineWindowMatchesExactMinerOnWindow) {
  StreamingParams params;
  params.min_support = 0.03;
  params.window_batches = 4;
  auto miner = StreamingMiner::Create(params);
  ASSERT_TRUE(miner.ok());
  for (uint64_t b = 0; b < 6; ++b) {
    ASSERT_TRUE(miner->AddBatch(QuestBatch(7 + b)).ok());
  }
  StreamingWindowStats stats;
  auto streamed = miner->MineWindow(&stats);
  ASSERT_TRUE(streamed.ok());
  EXPECT_FALSE(streamed->itemsets.empty());
  EXPECT_EQ(stats.window_transactions, miner->window_transactions());
  EXPECT_GE(stats.candidates_checked, stats.summary_candidates);

  MiningParams exact_params;
  exact_params.min_support = params.min_support;
  auto exact = MineFpGrowth(miner->WindowTransactions(), exact_params);
  ASSERT_TRUE(exact.ok());
  EXPECT_EQ(streamed->itemsets, exact->itemsets);
}

TEST(StreamingMinerTest, LossyCountingErrorBoundHolds) {
  StreamingParams params;
  params.min_support = 0.03;
  params.window_batches = 4;
  auto miner = StreamingMiner::Create(params);
  ASSERT_TRUE(miner.ok());
  for (uint64_t b = 0; b < 4; ++b) {
    ASSERT_TRUE(miner->AddBatch(QuestBatch(21 + b)).ok());
  }
  const TransactionDatabase window = miner->WindowTransactions();
  const double n = static_cast<double>(window.size());
  const double epsilon = params.EffectiveError();
  std::vector<FrequentItemset> approx = miner->ApproximateCounts();
  ASSERT_FALSE(approx.empty());
  for (const FrequentItemset& itemset : approx) {
    uint32_t true_count = TrueCount(window, itemset.items);
    // f never overestimates and misses at most ε occurrences per window
    // transaction: true - ε·N <= f <= true.
    EXPECT_LE(itemset.support, true_count) << FormatItemset(itemset);
    EXPECT_GE(static_cast<double>(itemset.support),
              static_cast<double>(true_count) - epsilon * n - 1e-9)
        << FormatItemset(itemset);
  }
  // No false negatives: everything truly frequent at s (a fortiori at
  // s + ε) appears in the verified output.
  auto streamed = miner->MineWindow();
  ASSERT_TRUE(streamed.ok());
  MiningParams exact_params;
  exact_params.min_support = params.min_support;
  auto exact = MineFpGrowth(window, exact_params);
  ASSERT_TRUE(exact.ok());
  for (const FrequentItemset& itemset : exact->itemsets) {
    EXPECT_NE(std::find(streamed->itemsets.begin(), streamed->itemsets.end(),
                        itemset),
              streamed->itemsets.end())
        << "missing truly frequent " << FormatItemset(itemset);
  }
}

TEST(StreamingMinerTest, MaxItemsetSizeCapsWindowResults) {
  StreamingParams params;
  params.min_support = 0.03;
  params.max_itemset_size = 2;
  auto miner = StreamingMiner::Create(params);
  ASSERT_TRUE(miner.ok());
  for (uint64_t b = 0; b < 3; ++b) {
    ASSERT_TRUE(miner->AddBatch(QuestBatch(31 + b)).ok());
  }
  auto streamed = miner->MineWindow();
  ASSERT_TRUE(streamed.ok());
  EXPECT_FALSE(streamed->itemsets.empty());
  for (const FrequentItemset& itemset : streamed->itemsets) {
    EXPECT_LE(itemset.items.size(), 2u);
  }
  MiningParams exact_params;
  exact_params.min_support = params.min_support;
  exact_params.max_itemset_size = 2;
  auto exact = MineFpGrowth(miner->WindowTransactions(), exact_params);
  ASSERT_TRUE(exact.ok());
  EXPECT_EQ(streamed->itemsets, exact->itemsets);
}

TEST(StreamingMinerTest, ResultsIdenticalAfterEviction) {
  // Mining after the window slid past old batches must equal an exact
  // mine of only the retained suffix — evicted batches leave no residue.
  StreamingParams params;
  params.min_support = 0.04;
  params.window_batches = 2;
  auto miner = StreamingMiner::Create(params);
  ASSERT_TRUE(miner.ok());
  for (uint64_t b = 0; b < 5; ++b) {
    ASSERT_TRUE(miner->AddBatch(QuestBatch(41 + b)).ok());
  }
  TransactionDatabase retained;
  for (uint64_t b = 3; b < 5; ++b) {
    TransactionDatabase batch = QuestBatch(41 + b);
    for (size_t t = 0; t < batch.size(); ++t) {
      retained.Add(batch.transaction(t));
    }
  }
  auto streamed = miner->MineWindow();
  ASSERT_TRUE(streamed.ok());
  MiningParams exact_params;
  exact_params.min_support = params.min_support;
  auto exact = MineFpGrowth(retained, exact_params);
  ASSERT_TRUE(exact.ok());
  EXPECT_EQ(streamed->itemsets, exact->itemsets);
}

}  // namespace
}  // namespace dmt::assoc
