// Differential tests for the out-of-core miners (assoc/out_of_core.h):
// partitioned Apriori and disk-projected FP-Growth must return exactly
// the itemsets and supports of the in-memory miners at every partition
// count and every thread count, with all work counters and registry
// totals invariant across num_threads (the parallel_diff_test contract,
// extended over the partition axis).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "assoc/apriori.h"
#include "assoc/fp_growth.h"
#include "assoc/out_of_core.h"
#include "core/check.h"
#include "gen/quest.h"
#include "io/partition.h"
#include "obs/metrics.h"

namespace dmt::assoc {
namespace {

core::TransactionDatabase Workload(uint64_t seed) {
  gen::QuestParams params;
  params.num_transactions = 2000;
  params.avg_transaction_size = 8;
  params.avg_pattern_size = 3;
  params.num_items = 200;
  params.num_patterns = 100;
  auto db = gen::GenerateQuestTransactions(params, seed);
  DMT_CHECK(db.ok());
  return std::move(db).value();
}

std::vector<std::string> Partitions(const core::TransactionDatabase& db,
                                    const std::string& tag, size_t count) {
  auto paths = io::WritePartitions(
      db, testing::TempDir() + "/dmt_ooc_" + tag, count);
  DMT_CHECK(paths.ok());
  return std::move(paths).value();
}

void ExpectSameItemsets(const MiningResult& in_memory,
                        const MiningResult& out_of_core, size_t partitions,
                        size_t threads) {
  EXPECT_EQ(in_memory.itemsets, out_of_core.itemsets)
      << "itemsets diverged at partitions=" << partitions
      << " num_threads=" << threads;
}

constexpr size_t kPartitionCounts[] = {1, 3, 8};
constexpr size_t kThreadCounts[] = {0, 1, 2, 7};

TEST(OutOfCoreDiffTest, PartitionedAprioriMatchesInMemory) {
  const auto db = Workload(/*seed=*/61);
  MiningParams params;
  params.min_support = 0.01;
  auto baseline = MineApriori(db, params);
  ASSERT_TRUE(baseline.ok());
  EXPECT_FALSE(baseline->itemsets.empty());
  for (size_t partitions : kPartitionCounts) {
    const auto paths = Partitions(db, "apriori", partitions);
    for (size_t threads : kThreadCounts) {
      params.num_threads = threads;
      auto mined = MineAprioriPartitioned(paths, params);
      ASSERT_TRUE(mined.ok()) << mined.status().ToString();
      ExpectSameItemsets(*baseline, *mined, partitions, threads);
      EXPECT_EQ(mined->partitions_mined, partitions);
      EXPECT_GT(mined->bytes_mapped, 0u);
    }
    params.num_threads = 0;
  }
}

TEST(OutOfCoreDiffTest, DiskProjectedFpGrowthMatchesInMemory) {
  const auto db = Workload(/*seed=*/62);
  MiningParams params;
  params.min_support = 0.0075;
  auto baseline = MineFpGrowth(db, params);
  ASSERT_TRUE(baseline.ok());
  EXPECT_FALSE(baseline->itemsets.empty());
  for (size_t partitions : kPartitionCounts) {
    const auto paths = Partitions(db, "fp", partitions);
    for (size_t threads : kThreadCounts) {
      params.num_threads = threads;
      auto mined = MineFpGrowthDiskProjected(paths, params);
      ASSERT_TRUE(mined.ok()) << mined.status().ToString();
      ExpectSameItemsets(*baseline, *mined, partitions, threads);
      EXPECT_EQ(mined->partitions_mined, partitions);
    }
    params.num_threads = 0;
  }
}

TEST(OutOfCoreDiffTest, FullResultInvariantAcrossThreadCounts) {
  // For a fixed partitioning, everything — itemsets, pass census, work
  // counters, bytes mapped — must be bit-identical at every thread count.
  const auto db = Workload(/*seed=*/63);
  const auto paths = Partitions(db, "invariant", 3);
  MiningParams params;
  params.min_support = 0.01;
  auto serial = MineAprioriPartitioned(paths, params);
  ASSERT_TRUE(serial.ok());
  for (size_t threads : {1u, 2u, 7u}) {
    params.num_threads = threads;
    auto parallel = MineAprioriPartitioned(paths, params);
    ASSERT_TRUE(parallel.ok());
    EXPECT_EQ(serial->itemsets, parallel->itemsets);
    ASSERT_EQ(serial->passes.size(), parallel->passes.size());
    for (size_t p = 0; p < serial->passes.size(); ++p) {
      EXPECT_EQ(serial->passes[p].pass, parallel->passes[p].pass);
      EXPECT_EQ(serial->passes[p].candidates,
                parallel->passes[p].candidates);
      EXPECT_EQ(serial->passes[p].frequent, parallel->passes[p].frequent);
    }
    EXPECT_EQ(serial->conditional_trees_built,
              parallel->conditional_trees_built);
    EXPECT_EQ(serial->fp_nodes_allocated, parallel->fp_nodes_allocated);
    EXPECT_EQ(serial->tidset_intersections,
              parallel->tidset_intersections);
    EXPECT_EQ(serial->partitions_mined, parallel->partitions_mined);
    EXPECT_EQ(serial->bytes_mapped, parallel->bytes_mapped);
  }
}

TEST(OutOfCoreDiffTest, MaxItemsetSizeCapMatchesInMemory) {
  const auto db = Workload(/*seed=*/64);
  MiningParams params;
  params.min_support = 0.0075;
  params.max_itemset_size = 2;
  auto baseline = MineFpGrowth(db, params);
  ASSERT_TRUE(baseline.ok());
  const auto paths = Partitions(db, "cap", 3);
  for (size_t threads : kThreadCounts) {
    params.num_threads = threads;
    auto mined = MineFpGrowthDiskProjected(paths, params);
    ASSERT_TRUE(mined.ok());
    ExpectSameItemsets(*baseline, *mined, 3, threads);
  }
}

TEST(OutOfCoreDiffTest, MorePartitionsThanTransactions) {
  // Degenerate split: more partitions than transactions leaves some
  // partitions empty; results must still match the in-memory miner.
  core::TransactionDatabase tiny;
  tiny.Add(std::vector<core::ItemId>{0, 1, 2});
  tiny.Add(std::vector<core::ItemId>{0, 1, 3});
  tiny.Add(std::vector<core::ItemId>{0, 2, 3});
  MiningParams params;
  params.min_support = 0.5;
  auto baseline = MineApriori(tiny, params);
  ASSERT_TRUE(baseline.ok());
  const auto paths = Partitions(tiny, "tiny", 8);
  for (size_t threads : {0u, 7u}) {
    params.num_threads = threads;
    auto mined = MineAprioriPartitioned(paths, params);
    ASSERT_TRUE(mined.ok()) << mined.status().ToString();
    ExpectSameItemsets(*baseline, *mined, 8, threads);
    EXPECT_EQ(mined->partitions_mined, 8u);
  }
}

TEST(OutOfCoreDiffTest, SinglePartitionEqualsTwoPhaseIdentity) {
  // K=1 is pure SON with one local mine; both miners must agree with each
  // other as well as with memory.
  const auto db = Workload(/*seed=*/65);
  const auto paths = Partitions(db, "single", 1);
  MiningParams params;
  params.min_support = 0.01;
  auto apriori = MineAprioriPartitioned(paths, params);
  auto fp = MineFpGrowthDiskProjected(paths, params);
  ASSERT_TRUE(apriori.ok());
  ASSERT_TRUE(fp.ok());
  EXPECT_EQ(apriori->itemsets, fp->itemsets);
}

TEST(OutOfCoreDiffTest, RegistryTotalsInvariantAcrossThreadCounts) {
  const auto db = Workload(/*seed=*/66);
  const auto paths = Partitions(db, "registry", 3);
  MiningParams params;
  params.min_support = 0.01;
  std::vector<std::pair<std::string, uint64_t>> baseline;
  for (size_t threads : {0u, 1u, 2u, 7u}) {
    obs::Registry::Global().Reset();
    params.num_threads = threads;
    ASSERT_TRUE(MineAprioriPartitioned(paths, params).ok());
    ASSERT_TRUE(MineFpGrowthDiskProjected(paths, params).ok());
    auto snapshot = obs::Registry::Global().CounterSnapshot();
    if (threads == 0) {
      baseline = snapshot;
      EXPECT_FALSE(baseline.empty());
    } else {
      EXPECT_EQ(snapshot, baseline)
          << "registry totals diverged at num_threads=" << threads;
    }
  }
}

TEST(OutOfCoreDiffTest, EmptyPartitionListIsAnError) {
  MiningParams params;
  auto mined = MineAprioriPartitioned({}, params);
  ASSERT_FALSE(mined.ok());
  EXPECT_EQ(mined.status().code(), core::StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace dmt::assoc
