#include "assoc/quantitative.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

#include "core/check.h"
#include "core/rng.h"

namespace dmt::assoc {
namespace {

using core::Dataset;
using core::DatasetBuilder;
using core::ItemId;

/// 40 rows with a planted implication: young applicants (ages 20/25) are
/// unmarried, old ones (70/75) are married. Four distinct age values, ten
/// rows each, so num_bins=4 gives one exact base interval per value.
Dataset PlantedDataset() {
  std::vector<double> ages;
  std::vector<uint32_t> married;
  for (double age : {20.0, 25.0, 70.0, 75.0}) {
    for (int i = 0; i < 10; ++i) {
      ages.push_back(age);
      married.push_back(age < 50.0 ? 0u : 1u);
    }
  }
  auto dataset = DatasetBuilder()
                     .AddNumericColumn("age", ages)
                     .AddCategoricalColumn("married", married, {"no", "yes"})
                     .SetLabels(std::vector<uint32_t>(40, 0), {"all"})
                     .Build();
  DMT_CHECK(dataset.ok());
  return std::move(dataset).value();
}

QuantParams PlantedParams() {
  QuantParams params;
  params.min_support = 0.2;
  params.num_bins = 4;
  params.max_merge_support = 0.5;
  params.min_confidence = 0.9;
  return params;
}

TEST(QuantParamsTest, ValidatesRanges) {
  QuantParams params;
  EXPECT_TRUE(params.Validate().ok());
  params.min_support = 0.0;
  EXPECT_FALSE(params.Validate().ok());
  params.min_support = 1.5;
  EXPECT_FALSE(params.Validate().ok());
  params = QuantParams();
  params.num_bins = 0;
  EXPECT_FALSE(params.Validate().ok());
  params = QuantParams();
  params.max_merge_support = 0.0;
  EXPECT_FALSE(params.Validate().ok());
  params = QuantParams();
  params.min_confidence = 0.0;
  EXPECT_FALSE(params.Validate().ok());
}

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

TEST(QuantParamsTest, ValidateRejectsNaNThresholds) {
  for (auto set : {+[](QuantParams* p) { p->min_support = kNan; },
                   +[](QuantParams* p) { p->max_merge_support = kNan; },
                   +[](QuantParams* p) { p->min_confidence = kNan; },
                   +[](QuantParams* p) { p->min_lift = kNan; },
                   +[](QuantParams* p) { p->min_conviction = kNan; },
                   +[](QuantParams* p) { p->min_leverage = kNan; }}) {
    QuantParams params;
    set(&params);
    EXPECT_FALSE(params.Validate().ok()) << "NaN threshold accepted";
  }
}

TEST(QuantizeTest, BaseIntervalsAreEquiDepth) {
  core::Rng rng(7);
  std::vector<double> values;
  for (int i = 0; i < 800; ++i) values.push_back(rng.UniformDouble());
  auto dataset = DatasetBuilder()
                     .AddNumericColumn("x", values)
                     .SetLabels(std::vector<uint32_t>(800, 0), {"all"})
                     .Build();
  ASSERT_TRUE(dataset.ok());
  QuantParams params;
  params.num_bins = 8;
  auto quantized = QuantizeDataset(*dataset, params);
  ASSERT_TRUE(quantized.ok());
  ASSERT_EQ(quantized->bins_per_attribute.size(), 1u);
  EXPECT_EQ(quantized->bins_per_attribute[0], 8u);
  // With continuous draws every base interval holds exactly n/B rows.
  std::vector<size_t> bin_rows(8, 0);
  for (size_t t = 0; t < quantized->transactions.size(); ++t) {
    for (ItemId id : quantized->transactions.transaction(t)) {
      const QuantItem* item = quantized->Item(id);
      ASSERT_NE(item, nullptr);
      if (item->first_bin == item->last_bin) ++bin_rows[item->first_bin];
    }
  }
  for (size_t b = 0; b < 8; ++b) EXPECT_EQ(bin_rows[b], 100u);
}

TEST(QuantizeTest, TiedValuesShareABin) {
  // A constant column collapses to a single base interval and no runs.
  auto dataset = DatasetBuilder()
                     .AddNumericColumn("x", std::vector<double>(50, 3.25))
                     .SetLabels(std::vector<uint32_t>(50, 0), {"all"})
                     .Build();
  ASSERT_TRUE(dataset.ok());
  QuantParams params;
  params.num_bins = 8;
  auto quantized = QuantizeDataset(*dataset, params);
  ASSERT_TRUE(quantized.ok());
  EXPECT_EQ(quantized->bins_per_attribute[0], 1u);
  ASSERT_EQ(quantized->items.size(), 1u);
  EXPECT_EQ(quantized->items[0].lo, 3.25);
  EXPECT_EQ(quantized->items[0].hi, 3.25);
  for (size_t t = 0; t < quantized->transactions.size(); ++t) {
    EXPECT_EQ(quantized->transactions.transaction(t).size(), 1u);
  }
}

TEST(QuantizeTest, MergedRunsRespectSupportCap) {
  Dataset dataset = PlantedDataset();
  auto quantized = QuantizeDataset(dataset, PlantedParams());
  ASSERT_TRUE(quantized.ok());
  // Age: 4 base intervals (10 rows each) + runs of two adjacent intervals
  // (20 rows = the 0.5 * 40 cap exactly); runs of three exceed the cap.
  // Married: one item per category.
  EXPECT_EQ(quantized->bins_per_attribute[0], 4u);
  size_t base = 0, runs = 0, categorical = 0;
  for (const QuantItem& item : quantized->items) {
    if (item.is_categorical) {
      ++categorical;
      continue;
    }
    size_t run_length = item.last_bin - item.first_bin + 1;
    EXPECT_LE(run_length, 2u) << item.label;
    (run_length == 1 ? base : runs) += 1;
  }
  EXPECT_EQ(base, 4u);
  EXPECT_EQ(runs, 3u);
  EXPECT_EQ(categorical, 2u);
  // Every row holds its base interval, every run containing it, and its
  // category item.
  for (size_t t = 0; t < quantized->transactions.size(); ++t) {
    auto transaction = quantized->transactions.transaction(t);
    size_t numeric = 0;
    for (ItemId id : transaction) {
      if (!quantized->Item(id)->is_categorical) ++numeric;
    }
    // Interior base intervals lie inside two length-2 runs, edge ones
    // inside one.
    EXPECT_GE(numeric, 2u);
    EXPECT_LE(numeric, 3u);
  }
}

TEST(QuantizeTest, PartialCompletenessFollowsPaperFormula) {
  Dataset dataset = PlantedDataset();
  QuantParams params = PlantedParams();
  auto quantized = QuantizeDataset(dataset, params);
  ASSERT_TRUE(quantized.ok());
  // K = 1 + 2m / (N * minsup) with m = 1 numeric attribute, N = 4 bins.
  EXPECT_NEAR(quantized->partial_completeness,
              1.0 + 2.0 / (4.0 * params.min_support), 1e-12);
}

TEST(QuantizeTest, RejectsEmptyDataset) {
  auto dataset = DatasetBuilder()
                     .AddNumericColumn("x", {})
                     .SetLabels({}, {"all"})
                     .Build();
  ASSERT_TRUE(dataset.ok());
  EXPECT_FALSE(QuantizeDataset(*dataset, QuantParams()).ok());
}

TEST(QuantitativeTest, FilterAttributeDistinctDropsSameAttributePairs) {
  std::vector<QuantItem> items(4);
  items[0].attribute = 0;
  items[1].attribute = 0;
  items[2].attribute = 1;
  items[3].attribute = 2;
  std::vector<FrequentItemset> itemsets = {
      {{0}, 10}, {{0, 1}, 8}, {{0, 2}, 7}, {{1, 2, 3}, 5}, {{0, 1, 2}, 4}};
  std::vector<FrequentItemset> kept = FilterAttributeDistinct(itemsets, items);
  std::vector<FrequentItemset> expected = {
      {{0}, 10}, {{0, 2}, 7}, {{1, 2, 3}, 5}};
  EXPECT_EQ(kept, expected);
}

TEST(QuantitativeTest, RecoversPlantedQuantitativeRule) {
  Dataset dataset = PlantedDataset();
  auto rule_set = MineQuantitativeRules(dataset, PlantedParams());
  ASSERT_TRUE(rule_set.ok());
  ASSERT_FALSE(rule_set->rules.empty());
  EXPECT_GT(rule_set->itemsets_mined, rule_set->itemsets_attribute_distinct);
  // The merged run [20, 25] implies married = no with confidence 1.
  bool found = false;
  for (const AssociationRule& rule : rule_set->rules) {
    if (rule.antecedent.size() != 1 || rule.consequent.size() != 1) continue;
    const QuantItem* antecedent = nullptr;
    const QuantItem* consequent = nullptr;
    ASSERT_LT(rule.antecedent[0], rule_set->items.size());
    ASSERT_LT(rule.consequent[0], rule_set->items.size());
    antecedent = &rule_set->items[rule.antecedent[0]];
    consequent = &rule_set->items[rule.consequent[0]];
    if (!antecedent->is_categorical && antecedent->lo == 20.0 &&
        antecedent->hi == 25.0 && consequent->is_categorical &&
        consequent->category == 0) {
      found = true;
      EXPECT_EQ(rule.support_count, 20u);
      EXPECT_EQ(rule.confidence, 1.0);
      EXPECT_EQ(rule.lift, 2.0);
      EXPECT_GE(rule.conviction, 1e11);
      EXPECT_NEAR(rule.leverage, 0.5 - 0.5 * 0.5, 1e-12);
      EXPECT_EQ(FormatQuantRule(rule, rule_set->items),
                "age in [20, 25] => married = no (supp=0.5000, conf=1.000, "
                "lift=2.00, conv=inf, lev=0.2500)");
    }
  }
  EXPECT_TRUE(found) << "planted rule age in [20,25] => married=no missing";
  // No rule may relate two intervals of the same attribute.
  for (const AssociationRule& rule : rule_set->rules) {
    std::vector<uint32_t> attributes;
    for (const Itemset* side : {&rule.antecedent, &rule.consequent}) {
      for (ItemId id : *side) {
        attributes.push_back(rule_set->items[id].attribute);
      }
    }
    std::sort(attributes.begin(), attributes.end());
    EXPECT_EQ(std::adjacent_find(attributes.begin(), attributes.end()),
              attributes.end())
        << FormatQuantRule(rule, rule_set->items);
  }
}

TEST(QuantitativeTest, InterestingnessFilterPrunesByLeverage) {
  Dataset dataset = PlantedDataset();
  QuantParams params = PlantedParams();
  params.min_confidence = 0.5;
  auto all = MineQuantitativeRules(dataset, params);
  ASSERT_TRUE(all.ok());
  params.min_leverage = 0.2;
  auto filtered = MineQuantitativeRules(dataset, params);
  ASSERT_TRUE(filtered.ok());
  EXPECT_LT(filtered->rules.size(), all->rules.size());
  for (const AssociationRule& rule : filtered->rules) {
    EXPECT_GE(rule.leverage, 0.2 - 1e-12);
  }
}

}  // namespace
}  // namespace dmt::assoc
