#include <gtest/gtest.h>

#include <atomic>
#include <cmath>

#include "core/bitset.h"
#include "core/distance.h"
#include "core/stats.h"
#include "core/string_util.h"
#include "core/thread_pool.h"
#include "core/timer.h"

namespace dmt::core {
namespace {

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
}

TEST(RunningStatsTest, MatchesClosedForm) {
  RunningStats stats;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.Add(v);
  EXPECT_EQ(stats.count(), 8u);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 4.0);
  EXPECT_DOUBLE_EQ(stats.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
  EXPECT_NEAR(stats.sample_variance(), 32.0 / 7.0, 1e-12);
}

TEST(RunningStatsTest, MergeEqualsSequential) {
  RunningStats all, left, right;
  for (int i = 0; i < 10; ++i) {
    double v = i * 1.3 - 4.0;
    all.Add(v);
    (i < 4 ? left : right).Add(v);
  }
  left.Merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-12);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(RunningStatsTest, MergeWithEmptySides) {
  RunningStats a, b;
  a.Add(1.0);
  a.Merge(b);  // empty rhs
  EXPECT_EQ(a.count(), 1u);
  b.Merge(a);  // empty lhs
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.0);
}

TEST(StatsTest, XLog2XHandlesZero) {
  EXPECT_DOUBLE_EQ(XLog2X(0.0), 0.0);
  EXPECT_DOUBLE_EQ(XLog2X(0.5), -0.5);
  EXPECT_DOUBLE_EQ(XLog2X(1.0), 0.0);
}

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  EXPECT_EQ(Split("a,,b", ','),
            (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(StringUtilTest, TrimStripsWhitespace) {
  EXPECT_EQ(Trim("  x y \t\n"), "x y");
  EXPECT_EQ(Trim("   "), "");
}

TEST(StringUtilTest, JoinConcatenates) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringUtilTest, ParseDouble) {
  EXPECT_DOUBLE_EQ(*ParseDouble("3.25"), 3.25);
  EXPECT_DOUBLE_EQ(*ParseDouble(" -1e3 "), -1000.0);
  EXPECT_FALSE(ParseDouble("abc").ok());
  EXPECT_FALSE(ParseDouble("1.5x").ok());
  EXPECT_FALSE(ParseDouble("").ok());
}

TEST(StringUtilTest, ParseUint) {
  EXPECT_EQ(*ParseUint("42"), 42u);
  EXPECT_FALSE(ParseUint("-1").ok());
  EXPECT_FALSE(ParseUint("4.2").ok());
  EXPECT_FALSE(ParseUint("").ok());
}

TEST(StringUtilTest, StrFormat) {
  EXPECT_EQ(StrFormat("x=%d y=%.1f", 3, 2.5), "x=3 y=2.5");
  EXPECT_EQ(StrFormat("%s", ""), "");
}

TEST(DistanceTest, EuclideanAndSquared) {
  std::vector<double> a = {0.0, 3.0};
  std::vector<double> b = {4.0, 0.0};
  EXPECT_DOUBLE_EQ(SquaredEuclideanDistance(a, b), 25.0);
  EXPECT_DOUBLE_EQ(EuclideanDistance(a, b), 5.0);
}

TEST(DistanceTest, ManhattanAndChebyshev) {
  std::vector<double> a = {1.0, -2.0};
  std::vector<double> b = {-1.0, 1.0};
  EXPECT_DOUBLE_EQ(ManhattanDistance(a, b), 5.0);
  EXPECT_DOUBLE_EQ(ChebyshevDistance(a, b), 3.0);
}

TEST(DistanceTest, ZeroForIdenticalPoints) {
  std::vector<double> a = {1.5, 2.5, -3.0};
  EXPECT_DOUBLE_EQ(SquaredEuclideanDistance(a, a), 0.0);
  EXPECT_DOUBLE_EQ(ManhattanDistance(a, a), 0.0);
}

TEST(BitsetTest, SetTestClear) {
  DynamicBitset bits(130);
  EXPECT_EQ(bits.size(), 130u);
  EXPECT_FALSE(bits.Test(129));
  bits.Set(129);
  EXPECT_TRUE(bits.Test(129));
  bits.Clear(129);
  EXPECT_FALSE(bits.Test(129));
}

TEST(BitsetTest, CountAcrossWordBoundaries) {
  DynamicBitset bits(200);
  for (size_t i = 0; i < 200; i += 7) bits.Set(i);
  EXPECT_EQ(bits.Count(), 29u);
}

TEST(BitsetTest, IntersectionVariantsAgree) {
  DynamicBitset a(100), b(100);
  for (size_t i = 0; i < 100; i += 2) a.Set(i);
  for (size_t i = 0; i < 100; i += 3) b.Set(i);
  size_t expected = 0;
  for (size_t i = 0; i < 100; i += 6) ++expected;
  EXPECT_EQ(a.IntersectionCount(b), expected);
  DynamicBitset c = a.Intersect(b);
  EXPECT_EQ(c.Count(), expected);
  DynamicBitset d = a;
  d.IntersectWith(b);
  EXPECT_EQ(d, c);
}

TEST(BitsetTest, ToIndicesAscending) {
  DynamicBitset bits(70);
  bits.Set(0);
  bits.Set(63);
  bits.Set(64);
  bits.Set(69);
  EXPECT_EQ(bits.ToIndices(),
            (std::vector<uint32_t>{0, 63, 64, 69}));
}

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPoolTest, ParallelForChunksCoversRange) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(50);
  ParallelForChunks(&pool, 0, 50, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForChunksSerialFallback) {
  std::vector<int> hits(10, 0);
  ParallelForChunks(nullptr, 0, 10, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) ++hits[i];
  });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPoolTest, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  ParallelForChunks(&pool, 5, 5,
                    [&](size_t, size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(TimerTest, MeasuresElapsedTime) {
  WallTimer timer;
  double first = timer.ElapsedSeconds();
  EXPECT_GE(first, 0.0);
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + std::sqrt(double(i));
  EXPECT_GE(timer.ElapsedSeconds(), first);
  timer.Reset();
  EXPECT_LT(timer.ElapsedSeconds(), 1.0);
}

}  // namespace
}  // namespace dmt::core
