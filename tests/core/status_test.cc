#include "core/status.h"

#include <gtest/gtest.h>

namespace dmt::core {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = Status::InvalidArgument("bad k");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.message(), "bad k");
  EXPECT_EQ(status.ToString(), "InvalidArgument: bad k");
}

TEST(StatusTest, EveryFactoryProducesItsCode) {
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Corruption("x").code(), StatusCode::kCorruption);
  EXPECT_EQ(Status::Corruption("bad crc").ToString(),
            "Corruption: bad crc");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::OK(), Status::OK());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::IOError("a"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(*result, 42);
  EXPECT_EQ(result.ValueOr(-1), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> result(Status::NotFound("missing"));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(result.ValueOr(-1), -1);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> result(std::string("hello"));
  std::string value = std::move(result).value();
  EXPECT_EQ(value, "hello");
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status Chained(int x) {
  DMT_RETURN_NOT_OK(FailIfNegative(x));
  return Status::OK();
}

TEST(ResultTest, ReturnNotOkMacroPropagates) {
  EXPECT_TRUE(Chained(1).ok());
  EXPECT_EQ(Chained(-1).code(), StatusCode::kInvalidArgument);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Status UseHalf(int x, int* out) {
  DMT_ASSIGN_OR_RETURN(*out, Half(x));
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(UseHalf(8, &out).ok());
  EXPECT_EQ(out, 4);
  EXPECT_FALSE(UseHalf(7, &out).ok());
}

TEST(ResultTest, AccessingErrorAborts) {
  Result<int> result(Status::Internal("boom"));
  EXPECT_DEATH({ (void)result.value(); }, "error status");
}

}  // namespace
}  // namespace dmt::core
