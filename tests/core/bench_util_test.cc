// Coverage for the bench harness determinism helpers (bench/bench_util.h):
// the cached workloads must hand back the same object on repeated calls,
// and their fixed seeds must regenerate bit-identical data — otherwise the
// parallel-speedup numbers recorded in BENCH_*.json are not comparable
// run-to-run.
#include "bench_util.h"

#include <gtest/gtest.h>

namespace dmt::bench {
namespace {

TEST(BenchUtilTest, QuestWorkloadIsCachedAndSeedFixed) {
  const auto& first = QuestWorkload(5, 2, 300);
  const auto& second = QuestWorkload(5, 2, 300);
  EXPECT_EQ(&first, &second) << "repeated lookups must share the cache";

  // Regenerate with the helper's pinned seed: identical database.
  gen::QuestParams params;
  params.avg_transaction_size = 5;
  params.avg_pattern_size = 2;
  params.num_transactions = 300;
  params.num_items = 1000;
  params.num_patterns = 2000;
  auto regenerated = gen::GenerateQuestTransactions(params, /*seed=*/1996);
  ASSERT_TRUE(regenerated.ok());
  EXPECT_EQ(first.ToBasketText(), regenerated->ToBasketText());
}

TEST(BenchUtilTest, SequenceWorkloadIsCachedAndSeedFixed) {
  const auto& first = SequenceWorkload(50);
  const auto& second = SequenceWorkload(50);
  EXPECT_EQ(&first, &second);

  gen::SequenceGenParams params;
  params.num_customers = 50;
  params.avg_transactions_per_customer = 10.0;
  params.avg_items_per_transaction = 2.5;
  params.avg_pattern_elements = 4.0;
  params.avg_pattern_itemset_size = 1.25;
  params.num_items = 1000;
  auto regenerated = gen::GenerateSequences(params, /*seed=*/1995);
  ASSERT_TRUE(regenerated.ok());
  ASSERT_EQ(first.size(), regenerated->size());
  for (size_t c = 0; c < first.size(); ++c) {
    EXPECT_EQ(first.sequence(c), regenerated->sequence(c)) << "customer " << c;
  }
}

TEST(BenchUtilTest, GridWorkloadIsCachedAndSeedFixed) {
  const auto& first = GridWorkload(4, 25);
  const auto& second = GridWorkload(4, 25);
  EXPECT_EQ(&first, &second);

  auto regenerated = gen::GenerateBirchGrid(4, 25, /*spacing=*/10.0,
                                            /*stddev=*/1.0, /*seed=*/1996);
  ASSERT_TRUE(regenerated.ok());
  EXPECT_EQ(first.points.data(), regenerated->points.data());
  EXPECT_EQ(first.labels, regenerated->labels);
}

TEST(BenchUtilTest, AgrawalWorkloadIsCached) {
  const auto& first = AgrawalWorkload(1, 200);
  const auto& second = AgrawalWorkload(1, 200);
  EXPECT_EQ(&first, &second);
  EXPECT_EQ(first.num_rows(), 200u);
}

TEST(BenchUtilTest, DistinctKeysGetDistinctEntries) {
  const auto& a = QuestWorkload(5, 2, 300);
  const auto& b = QuestWorkload(5, 2, 301);
  EXPECT_NE(&a, &b);
  EXPECT_EQ(b.size(), 301u);
}

}  // namespace
}  // namespace dmt::bench
