// Coverage for the bench harness determinism helpers (bench/bench_util.h):
// the cached workloads must hand back the same object on repeated calls,
// and their fixed seeds must regenerate bit-identical data — otherwise the
// parallel-speedup numbers recorded in BENCH_*.json are not comparable
// run-to-run.
#include "bench_util.h"

#include <gtest/gtest.h>

namespace dmt::bench {
namespace {

TEST(BenchUtilTest, QuestWorkloadIsCachedAndSeedFixed) {
  const auto& first = QuestWorkload(5, 2, 300);
  const auto& second = QuestWorkload(5, 2, 300);
  EXPECT_EQ(&first, &second) << "repeated lookups must share the cache";

  // Regenerate with the helper's pinned seed: identical database.
  gen::QuestParams params;
  params.avg_transaction_size = 5;
  params.avg_pattern_size = 2;
  params.num_transactions = 300;
  params.num_items = 1000;
  params.num_patterns = 2000;
  auto regenerated = gen::GenerateQuestTransactions(params, /*seed=*/1996);
  ASSERT_TRUE(regenerated.ok());
  EXPECT_EQ(first.ToBasketText(), regenerated->ToBasketText());
}

TEST(BenchUtilTest, SequenceWorkloadIsCachedAndSeedFixed) {
  const auto& first = SequenceWorkload(50);
  const auto& second = SequenceWorkload(50);
  EXPECT_EQ(&first, &second);

  gen::SequenceGenParams params;
  params.num_customers = 50;
  params.avg_transactions_per_customer = 10.0;
  params.avg_items_per_transaction = 2.5;
  params.avg_pattern_elements = 4.0;
  params.avg_pattern_itemset_size = 1.25;
  params.num_items = 1000;
  auto regenerated = gen::GenerateSequences(params, /*seed=*/1995);
  ASSERT_TRUE(regenerated.ok());
  ASSERT_EQ(first.size(), regenerated->size());
  for (size_t c = 0; c < first.size(); ++c) {
    EXPECT_EQ(first.sequence(c), regenerated->sequence(c)) << "customer " << c;
  }
}

TEST(BenchUtilTest, GridWorkloadIsCachedAndSeedFixed) {
  const auto& first = GridWorkload(4, 25);
  const auto& second = GridWorkload(4, 25);
  EXPECT_EQ(&first, &second);

  auto regenerated = gen::GenerateBirchGrid(4, 25, /*spacing=*/10.0,
                                            /*stddev=*/1.0, /*seed=*/1996);
  ASSERT_TRUE(regenerated.ok());
  EXPECT_EQ(first.points.data(), regenerated->points.data());
  EXPECT_EQ(first.labels, regenerated->labels);
}

TEST(BenchUtilTest, AgrawalWorkloadIsCached) {
  const auto& first = AgrawalWorkload(1, 200);
  const auto& second = AgrawalWorkload(1, 200);
  EXPECT_EQ(&first, &second);
  EXPECT_EQ(first.num_rows(), 200u);
}

TEST(BenchUtilTest, DistinctKeysGetDistinctEntries) {
  const auto& a = QuestWorkload(5, 2, 300);
  const auto& b = QuestWorkload(5, 2, 301);
  EXPECT_NE(&a, &b);
  EXPECT_EQ(b.size(), 301u);
}

TEST(LatencyRecorderTest, NearestRankPercentilesOnKnownSamples) {
  LatencyRecorder recorder;
  for (double v : {5.0, 1.0, 4.0, 2.0, 3.0}) recorder.Record(v);
  ASSERT_EQ(recorder.count(), 5u);
  // Nearest rank over {1,2,3,4,5}: rank = ceil(p/100 * 5).
  EXPECT_EQ(recorder.Percentile(0.0), 1.0);
  EXPECT_EQ(recorder.Percentile(10.0), 1.0);
  EXPECT_EQ(recorder.Percentile(20.0), 1.0);
  EXPECT_EQ(recorder.Percentile(50.0), 3.0);
  EXPECT_EQ(recorder.Percentile(90.0), 5.0);
  EXPECT_EQ(recorder.Percentile(99.0), 5.0);
  EXPECT_EQ(recorder.Percentile(100.0), 5.0);
  EXPECT_EQ(recorder.Mean(), 3.0);
  EXPECT_EQ(recorder.Max(), 5.0);
}

TEST(LatencyRecorderTest, PercentileIsAlwaysARecordedSample) {
  LatencyRecorder recorder;
  for (int i = 0; i < 100; ++i) {
    recorder.Record(static_cast<double>((i * 37) % 100));
  }
  for (double p : {0.0, 1.0, 12.5, 50.0, 90.0, 99.0, 99.9, 100.0}) {
    double value = recorder.Percentile(p);
    EXPECT_GE(value, 0.0);
    EXPECT_LE(value, 99.0);
    EXPECT_EQ(value, std::floor(value))
        << "p" << p << " interpolated between samples";
  }
}

TEST(LatencyRecorderTest, DeterministicUnderRecordingAndMergeOrder) {
  // The same multiset recorded in three different orders / shardings
  // must produce identical percentiles — the property that makes the
  // per-client-thread recorders in bench_serving mergeable.
  std::vector<double> samples;
  for (int i = 0; i < 257; ++i) {
    samples.push_back(static_cast<double>((i * 131) % 257));
  }

  LatencyRecorder forward;
  for (double v : samples) forward.Record(v);

  LatencyRecorder backward;
  for (size_t i = samples.size(); i > 0; --i) {
    backward.Record(samples[i - 1]);
  }

  LatencyRecorder merged;  // three shards, merged out of order
  LatencyRecorder shard_a;
  LatencyRecorder shard_b;
  LatencyRecorder shard_c;
  for (size_t i = 0; i < samples.size(); ++i) {
    (i % 3 == 0 ? shard_a : i % 3 == 1 ? shard_b : shard_c)
        .Record(samples[i]);
  }
  merged.Merge(shard_c);
  merged.Merge(shard_a);
  merged.Merge(shard_b);

  ASSERT_EQ(forward.count(), backward.count());
  ASSERT_EQ(forward.count(), merged.count());
  for (double p = 0.0; p <= 100.0; p += 0.5) {
    ASSERT_EQ(forward.Percentile(p), backward.Percentile(p)) << "p" << p;
    ASSERT_EQ(forward.Percentile(p), merged.Percentile(p)) << "p" << p;
  }
  EXPECT_EQ(forward.Mean(), merged.Mean());
  EXPECT_EQ(forward.Max(), merged.Max());
}

}  // namespace
}  // namespace dmt::bench
