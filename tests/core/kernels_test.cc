// Differential tests for the runtime-dispatched SIMD kernels: every
// compiled-in level must match the scalar table bit for bit, across
// lengths that exercise empty inputs, single elements, vector-width
// boundaries (+/-1 on both the AVX2 and AVX-512 strides) and every
// scalar-tail length. Float comparisons are byte comparisons — the
// contract is bit-identity, not tolerance.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <random>
#include <vector>

#include "core/bitset.h"
#include "core/kernels/kernels.h"

namespace dmt::core::kernels {
namespace {

// Word counts around the AVX2 (4 words/vector) and AVX-512 (8
// words/vector) strides, plus every tail length 0..8 and a couple of
// larger blocks.
const size_t kWordCounts[] = {0,  1,  2,  3,  4,  5,  6,  7,  8,  9,
                              15, 16, 17, 23, 24, 25, 31, 32, 33, 100};

// Dimensions around the 4- and 8-double vector widths with every tail
// 1..7, plus the benchmark sizes.
const size_t kDims[] = {0,  1,  2,  3,  4,  5,  6,  7,  8,  9,  11, 15,
                        16, 17, 23, 24, 25, 31, 32, 33, 64, 100, 256};

std::vector<uint64_t> RandomWords(size_t n, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<uint64_t> words(n);
  for (auto& w : words) w = rng();
  return words;
}

std::vector<double> RandomDoubles(size_t n, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> dist(-10.0, 10.0);
  std::vector<double> values(n);
  for (auto& v : values) v = dist(rng);
  return values;
}

std::vector<const KernelOps*> SupportedLevels() {
  std::vector<const KernelOps*> levels;
  for (KernelLevel level :
       {KernelLevel::kScalar, KernelLevel::kAvx2, KernelLevel::kAvx512}) {
    if (const KernelOps* ops = OpsForLevel(level)) levels.push_back(ops);
  }
  return levels;
}

bool BitIdentical(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

TEST(KernelDispatchTest, ScalarTableAlwaysPresent) {
  const KernelOps* scalar = OpsForLevel(KernelLevel::kScalar);
  ASSERT_NE(scalar, nullptr);
  EXPECT_EQ(scalar->level, KernelLevel::kScalar);
}

TEST(KernelDispatchTest, ActiveLevelIsSupported) {
  EXPECT_LE(static_cast<int>(ActiveLevel()),
            static_cast<int>(MaxSupportedLevel()));
  EXPECT_EQ(Ops().level, ActiveLevel());
}

TEST(KernelDispatchTest, LevelNamesRoundTrip) {
  for (KernelLevel level :
       {KernelLevel::kScalar, KernelLevel::kAvx2, KernelLevel::kAvx512}) {
    KernelLevel parsed;
    ASSERT_TRUE(ParseKernelLevel(KernelLevelName(level), &parsed));
    EXPECT_EQ(parsed, level);
  }
  KernelLevel parsed;
  EXPECT_FALSE(ParseKernelLevel("neon", &parsed));
  EXPECT_FALSE(ParseKernelLevel("", &parsed));
}

TEST(KernelBitsetTest, PopcountMatchesScalarAtEveryLevel) {
  const KernelOps* scalar = OpsForLevel(KernelLevel::kScalar);
  for (size_t n : kWordCounts) {
    const auto words = RandomWords(n, /*seed=*/n * 7919 + 1);
    const size_t expected = scalar->popcount(words.data(), n);
    for (const KernelOps* ops : SupportedLevels()) {
      EXPECT_EQ(ops->popcount(words.data(), n), expected)
          << KernelLevelName(ops->level) << " n=" << n;
    }
  }
}

TEST(KernelBitsetTest, IntersectionCountMatchesScalarAtEveryLevel) {
  const KernelOps* scalar = OpsForLevel(KernelLevel::kScalar);
  for (size_t n : kWordCounts) {
    const auto a = RandomWords(n, n * 31 + 1);
    const auto b = RandomWords(n, n * 31 + 2);
    const size_t expected = scalar->intersection_count(a.data(), b.data(), n);
    for (const KernelOps* ops : SupportedLevels()) {
      EXPECT_EQ(ops->intersection_count(a.data(), b.data(), n), expected)
          << KernelLevelName(ops->level) << " n=" << n;
    }
  }
}

TEST(KernelBitsetTest, IntersectInplaceMatchesScalarAtEveryLevel) {
  const KernelOps* scalar = OpsForLevel(KernelLevel::kScalar);
  for (size_t n : kWordCounts) {
    const auto a = RandomWords(n, n * 131 + 1);
    const auto b = RandomWords(n, n * 131 + 2);
    auto expected_words = a;
    const size_t expected_count =
        scalar->intersect_inplace(expected_words.data(), b.data(), n);
    for (const KernelOps* ops : SupportedLevels()) {
      auto words = a;
      const size_t count = ops->intersect_inplace(words.data(), b.data(), n);
      EXPECT_EQ(count, expected_count)
          << KernelLevelName(ops->level) << " n=" << n;
      EXPECT_EQ(words, expected_words)
          << KernelLevelName(ops->level) << " n=" << n;
    }
  }
}

TEST(KernelBitsetTest, IntersectIntoMatchesScalarAtEveryLevel) {
  const KernelOps* scalar = OpsForLevel(KernelLevel::kScalar);
  for (size_t n : kWordCounts) {
    const auto a = RandomWords(n, n * 271 + 1);
    const auto b = RandomWords(n, n * 271 + 2);
    std::vector<uint64_t> expected_out(n, ~uint64_t{0});
    const size_t expected_count =
        scalar->intersect_into(expected_out.data(), a.data(), b.data(), n);
    for (const KernelOps* ops : SupportedLevels()) {
      std::vector<uint64_t> out(n, ~uint64_t{0});
      const size_t count =
          ops->intersect_into(out.data(), a.data(), b.data(), n);
      EXPECT_EQ(count, expected_count)
          << KernelLevelName(ops->level) << " n=" << n;
      EXPECT_EQ(out, expected_out)
          << KernelLevelName(ops->level) << " n=" << n;
    }
  }
}

TEST(KernelBitsetTest, ToIndicesMatchesScalarAtEveryLevel) {
  const KernelOps* scalar = OpsForLevel(KernelLevel::kScalar);
  for (size_t n : kWordCounts) {
    const auto words = RandomWords(n, n * 523 + 1);
    std::vector<uint32_t> expected(n * 64 + 1, 0xFFFFFFFF);
    const size_t expected_written =
        scalar->to_indices(words.data(), n, expected.data());
    for (const KernelOps* ops : SupportedLevels()) {
      std::vector<uint32_t> out(n * 64 + 1, 0xFFFFFFFF);
      const size_t written = ops->to_indices(words.data(), n, out.data());
      EXPECT_EQ(written, expected_written)
          << KernelLevelName(ops->level) << " n=" << n;
      EXPECT_EQ(out, expected)
          << KernelLevelName(ops->level) << " n=" << n;
    }
  }
}

TEST(KernelContainmentTest, MaskIsSubsetMatchesScalarAtEveryLevel) {
  const KernelOps* scalar = OpsForLevel(KernelLevel::kScalar);
  for (size_t n : kWordCounts) {
    const auto super = RandomWords(n, n * 809 + 1);
    // True-subset case, random (almost surely not subset) case, and an
    // off-by-one-bit case that only differs in the final word.
    std::vector<std::vector<uint64_t>> subs;
    auto strict = super;
    for (auto& w : strict) w &= 0x5555555555555555ULL;
    subs.push_back(strict);
    subs.push_back(RandomWords(n, n * 809 + 2));
    if (n > 0) {
      auto last_bit = strict;
      last_bit[n - 1] |= ~super[n - 1] & (~super[n - 1] ^ (~super[n - 1] - 1));
      subs.push_back(last_bit);
    }
    for (const auto& sub : subs) {
      const bool expected =
          scalar->mask_is_subset(sub.data(), super.data(), n);
      for (const KernelOps* ops : SupportedLevels()) {
        EXPECT_EQ(ops->mask_is_subset(sub.data(), super.data(), n), expected)
            << KernelLevelName(ops->level) << " n=" << n;
      }
    }
  }
}

TEST(KernelDistanceTest, PairwiseKernelsMatchScalarBitForBit) {
  const KernelOps* scalar = OpsForLevel(KernelLevel::kScalar);
  for (size_t dim : kDims) {
    const auto a = RandomDoubles(dim, dim * 17 + 1);
    const auto b = RandomDoubles(dim, dim * 17 + 2);
    const double se = scalar->squared_euclidean(a.data(), b.data(), dim);
    const double mh = scalar->manhattan(a.data(), b.data(), dim);
    const double ch = scalar->chebyshev(a.data(), b.data(), dim);
    for (const KernelOps* ops : SupportedLevels()) {
      EXPECT_TRUE(BitIdentical(
          ops->squared_euclidean(a.data(), b.data(), dim), se))
          << KernelLevelName(ops->level) << " dim=" << dim;
      EXPECT_TRUE(BitIdentical(ops->manhattan(a.data(), b.data(), dim), mh))
          << KernelLevelName(ops->level) << " dim=" << dim;
      EXPECT_TRUE(BitIdentical(ops->chebyshev(a.data(), b.data(), dim), ch))
          << KernelLevelName(ops->level) << " dim=" << dim;
    }
  }
}

TEST(KernelDistanceTest, BatchedMatchesPairwiseScalarBitForBit) {
  const KernelOps* scalar = OpsForLevel(KernelLevel::kScalar);
  const size_t counts[] = {1, 2, 3, 4, 5, 6, 7, 8, 9, 15, 16, 17, 100, 257};
  const size_t dims[] = {1, 2, 3, 8, 16, 33};
  for (size_t count : counts) {
    for (size_t dim : dims) {
      const auto point = RandomDoubles(dim, count * 101 + dim);
      const auto rows = RandomDoubles(count * dim, count * 103 + dim);
      SoaBlock soa;
      soa.Assign(rows.data(), count, dim);
      // Reference: the scalar pairwise kernel per candidate.
      std::vector<double> expected(count);
      for (size_t c = 0; c < count; ++c) {
        expected[c] = scalar->squared_euclidean(point.data(),
                                                rows.data() + c * dim, dim);
      }
      for (const KernelOps* ops : SupportedLevels()) {
        std::vector<double> out(count, -1.0);
        ops->squared_euclidean_to_many(point.data(), soa.data(), count,
                                       count, dim, out.data());
        for (size_t c = 0; c < count; ++c) {
          EXPECT_TRUE(BitIdentical(out[c], expected[c]))
              << KernelLevelName(ops->level) << " count=" << count
              << " dim=" << dim << " c=" << c;
        }
      }
    }
  }
}

TEST(KernelDistanceTest, BatchedHonorsStrideWiderThanCount) {
  // A sub-block of a wider SoA matrix: stride stays the full width while
  // count covers only the block.
  const size_t full = 13;
  const size_t dim = 5;
  const auto rows = RandomDoubles(full * dim, 42);
  const auto point = RandomDoubles(dim, 43);
  SoaBlock soa;
  soa.Assign(rows.data(), full, dim);
  const KernelOps* scalar = OpsForLevel(KernelLevel::kScalar);
  for (size_t offset : {size_t{0}, size_t{4}, size_t{9}}) {
    const size_t count = full - offset;
    std::vector<double> expected(count);
    for (size_t c = 0; c < count; ++c) {
      expected[c] = scalar->squared_euclidean(
          point.data(), rows.data() + (offset + c) * dim, dim);
    }
    for (const KernelOps* ops : SupportedLevels()) {
      std::vector<double> out(count, -1.0);
      ops->squared_euclidean_to_many(point.data(), soa.data() + offset,
                                     full, count, dim, out.data());
      for (size_t c = 0; c < count; ++c) {
        EXPECT_TRUE(BitIdentical(out[c], expected[c]))
            << KernelLevelName(ops->level) << " offset=" << offset
            << " c=" << c;
      }
    }
  }
}

TEST(KernelAlignmentTest, AlignedVectorAndSoaBlockAre64ByteAligned) {
  AlignedVector<uint64_t> words(100, 0);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(words.data()) % kKernelAlignment,
            0u);
  SoaBlock soa;
  const auto rows = RandomDoubles(12, 7);
  soa.Assign(rows.data(), 4, 3);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(soa.data()) % kKernelAlignment, 0u);
  ASSERT_EQ(soa.count(), 4u);
  ASSERT_EQ(soa.dim(), 3u);
  // Dimension-major layout: coordinate d of candidate c at d * count + c.
  for (size_t c = 0; c < 4; ++c) {
    for (size_t d = 0; d < 3; ++d) {
      EXPECT_EQ(soa.data()[d * 4 + c], rows[c * 3 + d]);
    }
  }
}

TEST(KernelSignatureTest, SubsetOfItemsImpliesSignatureSubset) {
  const uint32_t items[] = {0, 1, 5, 63, 64, 100, 1000};
  uint64_t all = 0;
  for (uint32_t item : items) all |= SignatureOfItem(item);
  for (uint32_t item : items) {
    EXPECT_TRUE(SignatureSubset(SignatureOfItem(item), all));
  }
  // Items 1 and 65 collide mod 64; 2 does not collide with {0, 1}.
  EXPECT_TRUE(SignatureSubset(SignatureOfItem(65), SignatureOfItem(1)));
  EXPECT_FALSE(SignatureSubset(SignatureOfItem(2),
                               SignatureOfItem(0) | SignatureOfItem(1)));
  EXPECT_TRUE(SignatureSubset(0, 0));
}

// DynamicBitset sweeps bit sizes (not word counts) so the masked tail
// word and the running count are both exercised.
TEST(BitsetKernelRegressionTest, CountIsMaintainedNotRecomputed) {
  for (size_t bits : {size_t{0}, size_t{1}, size_t{63}, size_t{64},
                      size_t{65}, size_t{127}, size_t{128}, size_t{129},
                      size_t{1000}}) {
    DynamicBitset bs(bits);
    std::mt19937_64 rng(bits + 11);
    size_t reference = 0;
    std::vector<bool> model(bits, false);
    for (size_t step = 0; step < 2 * bits + 1; ++step) {
      if (bits == 0) break;
      const size_t bit = rng() % bits;
      if (rng() % 3 == 0) {
        if (model[bit]) --reference;
        model[bit] = false;
        bs.Clear(bit);
        bs.Clear(bit);  // double-clear must not drift the count
      } else {
        if (!model[bit]) ++reference;
        model[bit] = true;
        bs.Set(bit);
        bs.Set(bit);  // double-set must not drift the count
      }
      ASSERT_EQ(bs.Count(), reference);
    }
  }
}

TEST(BitsetKernelRegressionTest, ToIndicesIsSingleSweepAndExact) {
  for (size_t bits : {size_t{0}, size_t{1}, size_t{63}, size_t{64},
                      size_t{65}, size_t{129}, size_t{1000}}) {
    DynamicBitset bs(bits);
    std::vector<uint32_t> expected;
    std::mt19937_64 rng(bits + 29);
    for (size_t bit = 0; bit < bits; ++bit) {
      if (rng() % 2 == 0) bs.Set(bit);
    }
    for (size_t bit = 0; bit < bits; ++bit) {
      if (bs.Test(bit)) expected.push_back(static_cast<uint32_t>(bit));
    }
    const auto indices = bs.ToIndices();
    EXPECT_EQ(indices, expected) << "bits=" << bits;
    EXPECT_EQ(indices.size(), bs.Count());
  }
}

TEST(BitsetKernelRegressionTest, IntersectionsUpdateTheCachedCount) {
  for (size_t bits : {size_t{65}, size_t{129}, size_t{1000}}) {
    DynamicBitset a(bits);
    DynamicBitset b(bits);
    std::mt19937_64 rng(bits + 37);
    for (size_t bit = 0; bit < bits; ++bit) {
      if (rng() % 2 == 0) a.Set(bit);
      if (rng() % 2 == 0) b.Set(bit);
    }
    size_t expected = 0;
    for (size_t bit = 0; bit < bits; ++bit) {
      if (a.Test(bit) && b.Test(bit)) ++expected;
    }
    EXPECT_EQ(a.IntersectionCount(b), expected);
    DynamicBitset materialized = a.Intersect(b);
    EXPECT_EQ(materialized.Count(), expected);
    EXPECT_EQ(materialized.ToIndices().size(), expected);
    EXPECT_TRUE(materialized.IsSubsetOf(a));
    EXPECT_TRUE(materialized.IsSubsetOf(b));
    a.IntersectWith(b);
    EXPECT_EQ(a.Count(), expected);
    EXPECT_EQ(a, materialized);
  }
}

TEST(BitsetKernelRegressionTest, IsSubsetOfMatchesDefinition) {
  const size_t bits = 200;
  DynamicBitset sub(bits);
  DynamicBitset super(bits);
  for (size_t bit = 0; bit < bits; bit += 3) super.Set(bit);
  for (size_t bit = 0; bit < bits; bit += 6) sub.Set(bit);
  EXPECT_TRUE(sub.IsSubsetOf(super));
  EXPECT_FALSE(super.IsSubsetOf(sub));
  sub.Set(199);  // 199 % 3 != 0, so it is outside super
  EXPECT_FALSE(sub.IsSubsetOf(super));
  DynamicBitset empty(bits);
  EXPECT_TRUE(empty.IsSubsetOf(super));
  EXPECT_TRUE(empty.IsSubsetOf(empty));
}

}  // namespace
}  // namespace dmt::core::kernels
