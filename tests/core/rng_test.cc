#include "core/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

namespace dmt::core {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 16; ++i) {
    if (a.NextU64() != b.NextU64()) ++differing;
  }
  EXPECT_GT(differing, 12);
}

TEST(RngTest, UniformU64RespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.UniformU64(17), 17u);
  }
}

TEST(RngTest, UniformU64CoversAllResidues) {
  Rng rng(9);
  std::vector<int> seen(10, 0);
  for (int i = 0; i < 5000; ++i) ++seen[rng.UniformU64(10)];
  for (int count : seen) EXPECT_GT(count, 350);  // expected 500 each
}

TEST(RngTest, UniformIntInclusiveRange) {
  Rng rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(13);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, NormalMomentsMatch) {
  Rng rng(17);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    double v = rng.Normal();
    sum += v;
    sum_sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(RngTest, NormalWithParameters) {
  Rng rng(19);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.Normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(RngTest, ExponentialMeanMatches) {
  Rng rng(23);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    double v = rng.Exponential(3.0);
    EXPECT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum / n, 3.0, 0.1);
}

TEST(RngTest, PoissonSmallMean) {
  Rng rng(29);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.Poisson(4.0));
  EXPECT_NEAR(sum / n, 4.0, 0.1);
}

TEST(RngTest, PoissonLargeMeanUsesApproximation) {
  Rng rng(31);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.Poisson(100.0));
  EXPECT_NEAR(sum / n, 100.0, 1.0);
}

TEST(RngTest, PoissonZeroMeanIsZero) {
  Rng rng(37);
  EXPECT_EQ(rng.Poisson(0.0), 0u);
}

TEST(RngTest, CategoricalFollowsWeights) {
  Rng rng(41);
  std::vector<double> weights = {1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 8000; ++i) ++counts[rng.Categorical(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.4);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(43);
  std::vector<int> values(50);
  std::iota(values.begin(), values.end(), 0);
  std::vector<int> shuffled = values;
  rng.Shuffle(shuffled);
  EXPECT_NE(shuffled, values);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, values);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(47);
  auto sample = rng.SampleWithoutReplacement(100, 30);
  EXPECT_EQ(sample.size(), 30u);
  std::sort(sample.begin(), sample.end());
  EXPECT_TRUE(std::adjacent_find(sample.begin(), sample.end()) ==
              sample.end());
  for (size_t v : sample) EXPECT_LT(v, 100u);
}

TEST(RngTest, SampleAllYieldsEverything) {
  Rng rng(53);
  auto sample = rng.SampleWithoutReplacement(10, 10);
  std::sort(sample.begin(), sample.end());
  for (size_t i = 0; i < 10; ++i) EXPECT_EQ(sample[i], i);
}

TEST(RngTest, SplitStreamsAreIndependentAndDeterministic) {
  Rng a(99);
  Rng b(99);
  Rng child_a = a.Split();
  Rng child_b = b.Split();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(child_a.NextU64(), child_b.NextU64());
  }
  // Parent stream continues deterministically after the split.
  EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, SplitMix64KnownStability) {
  // Pin the generator's output so seeds stay portable across releases.
  uint64_t state = 0;
  uint64_t first = SplitMix64(state);
  uint64_t second = SplitMix64(state);
  EXPECT_EQ(first, 0xe220a8397b1dcdafULL);
  EXPECT_EQ(second, 0x6e789e6aa1b965f4ULL);
}

}  // namespace
}  // namespace dmt::core
