#include "core/transaction.h"

#include <gtest/gtest.h>

#include "core/item_dictionary.h"
#include "core/sequence.h"
#include "io/serialize.h"

namespace dmt::core {
namespace {

TEST(ItemDictionaryTest, AssignsDenseIdsInOrder) {
  ItemDictionary dict;
  EXPECT_EQ(dict.GetOrAdd("milk"), 0u);
  EXPECT_EQ(dict.GetOrAdd("bread"), 1u);
  EXPECT_EQ(dict.GetOrAdd("milk"), 0u);
  EXPECT_EQ(dict.size(), 2u);
  EXPECT_EQ(dict.Name(1), "bread");
}

TEST(ItemDictionaryTest, FindMissingIsNotFound) {
  ItemDictionary dict;
  dict.GetOrAdd("a");
  EXPECT_TRUE(dict.Find("a").ok());
  auto missing = dict.Find("b");
  EXPECT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
}

TEST(TransactionDatabaseTest, StartsEmpty) {
  TransactionDatabase db;
  EXPECT_TRUE(db.empty());
  EXPECT_EQ(db.size(), 0u);
  EXPECT_EQ(db.item_universe(), 0u);
  EXPECT_EQ(db.average_length(), 0.0);
}

TEST(TransactionDatabaseTest, SortsAndDeduplicatesItems) {
  TransactionDatabase db;
  db.Add(std::vector<ItemId>{5, 1, 3, 1, 5});
  ASSERT_EQ(db.size(), 1u);
  auto t = db.transaction(0);
  EXPECT_EQ(std::vector<ItemId>(t.begin(), t.end()),
            (std::vector<ItemId>{1, 3, 5}));
  EXPECT_EQ(db.item_universe(), 6u);
}

TEST(TransactionDatabaseTest, TracksTotalsAndAverages) {
  TransactionDatabase db;
  db.Add(std::vector<ItemId>{0, 1});
  db.Add(std::vector<ItemId>{2, 3, 4, 5});
  EXPECT_EQ(db.total_items(), 6u);
  EXPECT_DOUBLE_EQ(db.average_length(), 3.0);
}

TEST(TransactionDatabaseTest, ItemSupportsCountsOncePerTransaction) {
  TransactionDatabase db;
  db.Add(std::vector<ItemId>{0, 1, 1});  // duplicate collapses
  db.Add(std::vector<ItemId>{1, 2});
  auto supports = db.ItemSupports();
  ASSERT_EQ(supports.size(), 3u);
  EXPECT_EQ(supports[0], 1u);
  EXPECT_EQ(supports[1], 2u);
  EXPECT_EQ(supports[2], 1u);
}

TEST(TransactionDatabaseTest, BasketTextRoundTrip) {
  TransactionDatabase db;
  db.Add(std::vector<ItemId>{3, 1});
  db.Add(std::vector<ItemId>{7});
  std::string text = db.ToBasketText();
  EXPECT_EQ(text, "1 3\n7\n");
  auto parsed = TransactionDatabase::FromBasketText(text);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->size(), 2u);
  auto t0 = parsed->transaction(0);
  EXPECT_EQ(std::vector<ItemId>(t0.begin(), t0.end()),
            (std::vector<ItemId>{1, 3}));
}

TEST(TransactionDatabaseTest, FromBasketTextRejectsGarbage) {
  EXPECT_FALSE(TransactionDatabase::FromBasketText("1 x 3\n").ok());
}

TEST(TransactionDatabaseTest, FromBasketTextRejectsOversizedIds) {
  EXPECT_FALSE(
      TransactionDatabase::FromBasketText("99999999999999\n").ok());
}

TEST(TransactionDatabaseTest, FromBasketTextRejectsNegativeIds) {
  EXPECT_FALSE(TransactionDatabase::FromBasketText("1 -2 3\n").ok());
}

TEST(TransactionDatabaseTest, FromBasketTextRejectsEmbeddedGarbageLine) {
  // A malformed line in the middle must fail the whole parse, not
  // silently drop the line.
  EXPECT_FALSE(TransactionDatabase::FromBasketText("1 2\n3 four\n5\n").ok());
}

TEST(TransactionDatabaseTest, FromColumnsAcceptsValidCsr) {
  auto db = TransactionDatabase::FromColumns({0, 2, 2, 3}, {1, 4, 2});
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_EQ(db->size(), 3u);
  EXPECT_EQ(db->item_universe(), 5u);
  auto t0 = db->transaction(0);
  EXPECT_EQ(std::vector<ItemId>(t0.begin(), t0.end()),
            (std::vector<ItemId>{1, 4}));
  EXPECT_TRUE(db->transaction(1).empty());
}

TEST(TransactionDatabaseTest, FromColumnsRejectsMalformedCsr) {
  // Empty offsets.
  EXPECT_EQ(TransactionDatabase::FromColumns({}, {}).status().code(),
            StatusCode::kCorruption);
  // First offset not zero.
  EXPECT_EQ(TransactionDatabase::FromColumns({1, 2}, {0, 1}).status().code(),
            StatusCode::kCorruption);
  // Last offset disagrees with the item count.
  EXPECT_EQ(TransactionDatabase::FromColumns({0, 3}, {1, 2}).status().code(),
            StatusCode::kCorruption);
  // Decreasing offsets.
  EXPECT_EQ(
      TransactionDatabase::FromColumns({0, 2, 1, 3}, {1, 2, 3})
          .status()
          .code(),
      StatusCode::kCorruption);
  // Duplicate item within a transaction.
  EXPECT_EQ(
      TransactionDatabase::FromColumns({0, 2}, {4, 4}).status().code(),
      StatusCode::kCorruption);
  // Unsorted transaction.
  EXPECT_EQ(
      TransactionDatabase::FromColumns({0, 2}, {5, 2}).status().code(),
      StatusCode::kCorruption);
}

TEST(TransactionDatabaseTest, FromColumnsRoundTripsRawArrays) {
  TransactionDatabase db;
  db.Add(std::vector<ItemId>{3, 1});
  db.Add(std::vector<ItemId>{7});
  auto rebuilt = TransactionDatabase::FromColumns(
      {db.offsets().begin(), db.offsets().end()},
      {db.items().begin(), db.items().end()});
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_EQ(rebuilt->ToBasketText(), db.ToBasketText());
  EXPECT_EQ(rebuilt->item_universe(), db.item_universe());
}

TEST(TransactionDatabaseTest, BinaryWriteLoadRoundTrip) {
  TransactionDatabase db;
  db.Add(std::vector<ItemId>{3, 1});
  db.Add(std::vector<ItemId>{});
  db.Add(std::vector<ItemId>{7, 2, 5});
  const std::string path = testing::TempDir() + "/txn_rt.dmtb";
  ASSERT_TRUE(io::WriteTransactionDatabase(db, path).ok());
  auto loaded = io::LoadTransactionDatabase(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->ToBasketText(), db.ToBasketText());
  EXPECT_EQ(loaded->item_universe(), db.item_universe());
  EXPECT_EQ(loaded->total_items(), db.total_items());
}

TEST(SequenceTest, TotalItemsSumsElements) {
  Sequence s;
  s.elements = {{1, 2}, {3}, {4, 5, 6}};
  EXPECT_EQ(s.TotalItems(), 6u);
}

TEST(SequenceTest, ContainsMatchesInOrder) {
  Sequence haystack;
  haystack.elements = {{1, 2, 3}, {4, 5}, {6}, {7, 8}};
  Sequence needle;
  needle.elements = {{1, 3}, {7}};
  EXPECT_TRUE(haystack.Contains(needle));
}

TEST(SequenceTest, ContainsRespectsOrder) {
  Sequence haystack;
  haystack.elements = {{4, 5}, {1, 2, 3}};
  Sequence needle;
  needle.elements = {{1}, {4}};  // order 1 then 4 not present
  EXPECT_FALSE(haystack.Contains(needle));
}

TEST(SequenceTest, ContainsRequiresDistinctElements) {
  Sequence haystack;
  haystack.elements = {{1, 2}};
  Sequence needle;
  needle.elements = {{1}, {2}};  // needs two separate elements
  EXPECT_FALSE(haystack.Contains(needle));
}

TEST(SequenceTest, EmptySequenceContainedInAnything) {
  Sequence haystack;
  haystack.elements = {{1}};
  EXPECT_TRUE(haystack.Contains(Sequence{}));
}

TEST(SequenceTest, GreedyMatchingFindsLaterPlacement) {
  // The first element of the needle matches both haystack elements; greedy
  // earliest matching must still leave room for the second.
  Sequence haystack;
  haystack.elements = {{1}, {1}, {2}};
  Sequence needle;
  needle.elements = {{1}, {1}, {2}};
  EXPECT_TRUE(haystack.Contains(needle));
}

TEST(SequenceDatabaseTest, AddCleansElements) {
  SequenceDatabase db;
  Sequence s;
  s.elements = {{3, 1, 3}, {}, {2}};
  db.Add(s);
  ASSERT_EQ(db.size(), 1u);
  const Sequence& stored = db.sequence(0);
  ASSERT_EQ(stored.size(), 2u);  // empty element dropped
  EXPECT_EQ(stored.elements[0], (std::vector<ItemId>{1, 3}));
  EXPECT_EQ(db.item_universe(), 4u);
}

TEST(SequenceDatabaseTest, AverageElements) {
  SequenceDatabase db;
  Sequence a;
  a.elements = {{1}, {2}};
  Sequence b;
  b.elements = {{3}, {4}, {5}, {6}};
  db.Add(a);
  db.Add(b);
  EXPECT_DOUBLE_EQ(db.average_elements(), 3.0);
}

}  // namespace
}  // namespace dmt::core
