// Dedicated ThreadPool / ParallelContext suite: Submit/Wait reentrancy,
// degenerate ranges, stress, and destructor draining — the contracts the
// parallel mining kernels rely on (previously the pool was only
// incidentally exercised via util_test.cc).
#include "core/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <numeric>
#include <vector>

#include "core/parallel.h"

namespace dmt::core {
namespace {

TEST(ThreadPoolTest, SubmitFromInsideTaskIsCoveredByWait) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int i = 0; i < 20; ++i) {
    pool.Submit([&pool, &counter] {
      counter.fetch_add(1);
      // The parent task is still active while it enqueues, so Wait() must
      // also cover the nested tasks (transitively).
      pool.Submit([&pool, &counter] {
        counter.fetch_add(1);
        pool.Submit([&counter] { counter.fetch_add(1); });
      });
    });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 60);
}

TEST(ThreadPoolTest, SubmitAfterWaitStartsNextBatch) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 10; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.Wait();
    EXPECT_EQ(counter.load(), (round + 1) * 10);
  }
}

TEST(ThreadPoolTest, WaitOnIdlePoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();
  pool.Wait();
}

TEST(ThreadPoolTest, StressTenThousandTinyTasks) {
  ThreadPool pool(4);
  std::atomic<uint64_t> sum{0};
  for (uint64_t i = 0; i < 10000; ++i) {
    pool.Submit([&sum, i] { sum.fetch_add(i + 1); });
  }
  pool.Wait();
  EXPECT_EQ(sum.load(), 10000ull * 10001ull / 2);
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 1000; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    // No Wait(): the destructor must still run every queued task before
    // joining (its contract is drain-then-join, not drop).
  }
  EXPECT_EQ(counter.load(), 1000);
}

TEST(ThreadPoolTest, ConcurrentSubmittersAllLand) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::thread> submitters;
  for (int s = 0; s < 4; ++s) {
    submitters.emplace_back([&pool, &counter] {
      for (int i = 0; i < 500; ++i) {
        pool.Submit([&counter] { counter.fetch_add(1); });
      }
    });
  }
  for (auto& t : submitters) t.join();
  pool.Wait();
  EXPECT_EQ(counter.load(), 2000);
}

TEST(ThreadPoolTest, AtLeastOneWorkerEvenForZero) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, SubmitTaskReturnsResultThroughFuture) {
  ThreadPool pool(2);
  std::future<int> answer = pool.SubmitTask([] { return 6 * 7; });
  EXPECT_EQ(answer.get(), 42);
  // Void tasks get a future usable purely as a completion signal.
  std::atomic<bool> ran{false};
  std::future<void> done = pool.SubmitTask([&ran] { ran.store(true); });
  done.get();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPoolTest, SubmitTaskMoveOnlyResultAndCapture) {
  ThreadPool pool(2);
  auto payload = std::make_unique<int>(17);
  std::future<std::unique_ptr<int>> moved = pool.SubmitTask(
      [p = std::move(payload)]() mutable { return std::move(p); });
  std::unique_ptr<int> result = moved.get();
  ASSERT_NE(result, nullptr);
  EXPECT_EQ(*result, 17);
}

TEST(ThreadPoolTest, SubmitTaskFromInsideTaskDoesNotDeadlock) {
  ThreadPool pool(2);
  std::future<int> outer = pool.SubmitTask([&pool] {
    // Nested SubmitTask enqueues; the parent must not block on the
    // child's future while holding the only worker if the pool is
    // saturated — here one other worker is free, so get() is safe and
    // the contract matches Submit()'s reentrancy guarantee.
    std::future<int> inner = pool.SubmitTask([] { return 5; });
    return inner.get() + 1;
  });
  EXPECT_EQ(outer.get(), 6);
}

TEST(ThreadPoolTest, SubmitTaskIsCoveredByWait) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.SubmitTask([&counter] { counter.fetch_add(1); }));
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
  for (auto& f : futures) {
    EXPECT_EQ(f.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
  }
}

// TSan-facing stress: many threads submitting future-returning tasks that
// in turn submit, with every result collected. Exercises the queue,
// promise/future handoff, and the drain-then-join destructor under
// contention (this binary runs in the tier-2 TSan batch of check.sh).
TEST(ThreadPoolTest, SubmitTaskConcurrentStress) {
  constexpr int kSubmitters = 4;
  constexpr int kTasksPerSubmitter = 250;
  ThreadPool pool(4);
  std::atomic<uint64_t> nested_sum{0};
  std::vector<std::thread> submitters;
  std::vector<std::vector<std::future<uint64_t>>> results(kSubmitters);
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&pool, &nested_sum, &results, s] {
      results[s].reserve(kTasksPerSubmitter);
      for (int i = 0; i < kTasksPerSubmitter; ++i) {
        results[s].push_back(pool.SubmitTask([&pool, &nested_sum, s, i] {
          pool.Submit([&nested_sum] { nested_sum.fetch_add(1); });
          return static_cast<uint64_t>(s * kTasksPerSubmitter + i);
        }));
      }
    });
  }
  for (auto& t : submitters) t.join();
  uint64_t direct_sum = 0;
  for (auto& per_submitter : results) {
    for (auto& f : per_submitter) direct_sum += f.get();
  }
  const uint64_t n = kSubmitters * kTasksPerSubmitter;
  EXPECT_EQ(direct_sum, n * (n - 1) / 2);
  pool.Wait();
  EXPECT_EQ(nested_sum.load(), n);
}

TEST(ParallelForChunksTest, SingleElementRange) {
  ThreadPool pool(3);
  int hits = 0;
  ParallelForChunks(&pool, 7, 8, [&](size_t begin, size_t end) {
    EXPECT_EQ(begin, 7u);
    EXPECT_EQ(end, 8u);
    ++hits;
  });
  EXPECT_EQ(hits, 1);
}

TEST(ParallelForChunksTest, EmptyAndInvertedRangesAreNoops) {
  ThreadPool pool(2);
  bool called = false;
  ParallelForChunks(&pool, 4, 4, [&](size_t, size_t) { called = true; });
  ParallelForChunks(&pool, 9, 3, [&](size_t, size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelContextTest, SerialContextHasNoPool) {
  ParallelContext serial0(0);
  ParallelContext serial1(1);
  EXPECT_FALSE(serial0.parallel());
  EXPECT_FALSE(serial1.parallel());
  EXPECT_EQ(serial0.pool(), nullptr);
  EXPECT_EQ(serial0.NumChunks(100), 1u);
  EXPECT_EQ(serial0.NumChunks(0), 0u);
}

TEST(ParallelContextTest, ParallelChunkCountCappedByRangeAndWorkers) {
  ParallelContext ctx(4);
  ASSERT_TRUE(ctx.parallel());
  EXPECT_EQ(ctx.pool()->num_threads(), 4u);
  EXPECT_EQ(ctx.NumChunks(1000), 8u);  // 2x workers
  EXPECT_EQ(ctx.NumChunks(3), 3u);     // never more chunks than items
  EXPECT_EQ(ctx.NumChunks(0), 0u);
}

TEST(ParallelContextTest, ForEachChunkPartitionsExactly) {
  for (size_t threads : {0u, 2u, 4u}) {
    ParallelContext ctx(threads);
    for (size_t n : {0u, 1u, 7u, 64u, 1000u}) {
      std::vector<std::atomic<int>> hits(n);
      std::atomic<size_t> chunks_seen{0};
      ctx.ForEachChunk(n, [&](size_t chunk, size_t begin, size_t end) {
        EXPECT_LT(chunk, ctx.NumChunks(n));
        EXPECT_LT(begin, end);
        chunks_seen.fetch_add(1);
        for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
      });
      EXPECT_EQ(chunks_seen.load(), ctx.NumChunks(n));
      for (auto& h : hits) EXPECT_EQ(h.load(), 1);
    }
  }
}

TEST(ParallelContextTest, CountPartitionedMatchesSerial) {
  // Count i % m over a range with a serial and a parallel context; the
  // merged totals must be identical.
  const size_t n = 5000, m = 16;
  auto count_range = [&](size_t begin, size_t end,
                         std::span<uint32_t> local) {
    for (size_t i = begin; i < end; ++i) ++local[i % m];
  };
  std::vector<uint32_t> serial(m, 0), parallel(m, 0);
  CountPartitioned(ParallelContext(0), n, serial, count_range);
  CountPartitioned(ParallelContext(4), n, parallel, count_range);
  EXPECT_EQ(serial, parallel);
  uint32_t total = std::accumulate(serial.begin(), serial.end(), 0u);
  EXPECT_EQ(total, n);
}

TEST(ParallelContextTest, MergeCountsAccumulatesInOrder) {
  std::vector<std::vector<uint32_t>> partials = {{1, 2, 3}, {10, 20, 30}};
  std::vector<uint32_t> totals = {100, 100, 100};
  MergeCounts(partials, totals);
  EXPECT_EQ(totals, (std::vector<uint32_t>{111, 122, 133}));
}

}  // namespace
}  // namespace dmt::core
