#include "core/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

namespace dmt::core {
namespace {

TEST(CsvTest, ParsesSimpleTableWithHeader) {
  auto result = ParseCsv("a,b,c\n1,2,3\n4,5,6\n");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->header, (std::vector<std::string>{"a", "b", "c"}));
  ASSERT_EQ(result->rows.size(), 2u);
  EXPECT_EQ(result->rows[0], (std::vector<std::string>{"1", "2", "3"}));
  EXPECT_EQ(result->rows[1], (std::vector<std::string>{"4", "5", "6"}));
}

TEST(CsvTest, ParsesWithoutHeader) {
  CsvOptions options;
  options.has_header = false;
  auto result = ParseCsv("1,2\n3,4\n", options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->header.empty());
  EXPECT_EQ(result->rows.size(), 2u);
}

TEST(CsvTest, HandlesMissingTrailingNewline) {
  auto result = ParseCsv("a,b\n1,2");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_EQ(result->rows[0][1], "2");
}

TEST(CsvTest, HandlesCrlf) {
  auto result = ParseCsv("a,b\r\n1,2\r\n");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_EQ(result->header[1], "b");
  EXPECT_EQ(result->rows[0][0], "1");
}

TEST(CsvTest, QuotedFieldsWithDelimitersAndNewlines) {
  auto result = ParseCsv("name,note\nx,\"hello, world\"\ny,\"line1\nline2\"\n");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows[0][1], "hello, world");
  EXPECT_EQ(result->rows[1][1], "line1\nline2");
}

TEST(CsvTest, DoubledQuotesUnescape) {
  auto result = ParseCsv("a\n\"she said \"\"hi\"\"\"\n");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows[0][0], "she said \"hi\"");
}

TEST(CsvTest, EmptyFieldsPreserved) {
  auto result = ParseCsv("a,b,c\n,,\n");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows[0], (std::vector<std::string>{"", "", ""}));
}

TEST(CsvTest, RejectsRaggedRows) {
  auto result = ParseCsv("a,b\n1,2,3\n");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(CsvTest, AllowsRaggedRowsWhenRequested) {
  CsvOptions options;
  options.require_rectangular = false;
  auto result = ParseCsv("a,b\n1,2,3\n4\n", options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows[0].size(), 3u);
  EXPECT_EQ(result->rows[1].size(), 1u);
}

TEST(CsvTest, RejectsUnterminatedQuote) {
  auto result = ParseCsv("a\n\"oops\n");
  EXPECT_FALSE(result.ok());
}

TEST(CsvTest, CustomDelimiter) {
  CsvOptions options;
  options.delimiter = ';';
  auto result = ParseCsv("a;b\n1;2\n", options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows[0][1], "2");
}

TEST(CsvTest, RoundTripThroughWriter) {
  CsvTable table;
  table.header = {"id", "text"};
  table.rows = {{"1", "plain"},
                {"2", "with, comma"},
                {"3", "with \"quote\""},
                {"4", "multi\nline"}};
  std::string text = WriteCsv(table);
  auto reparsed = ParseCsv(text);
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed->header, table.header);
  EXPECT_EQ(reparsed->rows, table.rows);
}

TEST(CsvTest, FileRoundTrip) {
  CsvTable table;
  table.header = {"x"};
  table.rows = {{"1"}, {"2"}};
  std::string path = testing::TempDir() + "/dmt_csv_test.csv";
  ASSERT_TRUE(WriteCsvFile(path, table).ok());
  auto loaded = ReadCsvFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->rows, table.rows);
  std::remove(path.c_str());
}

TEST(CsvTest, MissingFileIsIOError) {
  auto result = ReadCsvFile("/nonexistent/path/nope.csv");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIOError);
}

TEST(CsvTest, HeaderOnlyTableHasNoRows) {
  auto result = ParseCsv("a,b\n");
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->rows.empty());
}

TEST(CsvTest, EmptyInputWithHeaderOptionFails) {
  auto result = ParseCsv("");
  EXPECT_FALSE(result.ok());
}

}  // namespace
}  // namespace dmt::core
