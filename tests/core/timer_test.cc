#include "core/timer.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

namespace dmt::core {
namespace {

TEST(WallTimerTest, ElapsedAdvancesMonotonically) {
  WallTimer timer;
  double first = timer.ElapsedSeconds();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  double second = timer.ElapsedSeconds();
  EXPECT_GE(first, 0.0);
  EXPECT_GT(second, first);
  EXPECT_GE(second, 0.005);
}

TEST(WallTimerTest, ResetRewindsTheEpoch) {
  WallTimer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  timer.Reset();
  EXPECT_LT(timer.ElapsedSeconds(), 0.005);
}

TEST(CpuTimerTest, NowIsNonNegativeAndMonotonic) {
  double first = CpuTimer::Now();
  // Burn a little CPU so the process clock must advance.
  double sink = 0.0;
  for (int i = 0; i < 2000000; ++i) sink += static_cast<double>(i) * 1e-9;
  asm volatile("" : : "g"(&sink) : "memory");
  double second = CpuTimer::Now();
  EXPECT_GE(first, 0.0);
  EXPECT_GE(second, first);
}

TEST(CpuTimerTest, SleepCostsLittleCpuTime) {
  // CPU time must not track wall time across a sleep: that is the whole
  // point of reporting both clocks on a span.
  double cpu_before = CpuTimer::Now();
  WallTimer wall;
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  double cpu_spent = CpuTimer::Now() - cpu_before;
  double wall_spent = wall.ElapsedSeconds();
  EXPECT_GE(wall_spent, 0.050);
  EXPECT_LT(cpu_spent, wall_spent);
}

}  // namespace
}  // namespace dmt::core
