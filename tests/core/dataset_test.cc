#include "core/dataset.h"

#include <gtest/gtest.h>

#include "core/point_set.h"
#include "io/serialize.h"

namespace dmt::core {
namespace {

Dataset MakeToyDataset() {
  DatasetBuilder builder;
  builder.AddNumericColumn("age", {25.0, 40.0, 61.0})
      .AddCategoricalColumn("color", {0, 1, 0}, {"red", "blue"})
      .SetLabels({0, 1, 1}, {"no", "yes"});
  auto result = builder.Build();
  EXPECT_TRUE(result.ok());
  return std::move(result).value();
}

TEST(DatasetBuilderTest, BuildsValidDataset) {
  Dataset ds = MakeToyDataset();
  EXPECT_EQ(ds.num_rows(), 3u);
  EXPECT_EQ(ds.num_attributes(), 2u);
  EXPECT_EQ(ds.num_classes(), 2u);
  EXPECT_EQ(ds.attribute(0).name, "age");
  EXPECT_EQ(ds.attribute(0).type, AttributeType::kNumeric);
  EXPECT_EQ(ds.attribute(1).type, AttributeType::kCategorical);
  EXPECT_EQ(ds.attribute(1).categories.size(), 2u);
  EXPECT_DOUBLE_EQ(ds.Numeric(1, 0), 40.0);
  EXPECT_EQ(ds.Categorical(2, 1), 0u);
  EXPECT_EQ(ds.Label(2), 1u);
  EXPECT_EQ(ds.class_name(0), "no");
}

TEST(DatasetBuilderTest, RejectsMismatchedColumnLength) {
  DatasetBuilder builder;
  builder.AddNumericColumn("x", {1.0, 2.0})
      .SetLabels({0, 1, 0}, {"a", "b"});
  auto result = builder.Build();
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(DatasetBuilderTest, RejectsOutOfRangeCategoryCode) {
  DatasetBuilder builder;
  builder.AddCategoricalColumn("c", {0, 5}, {"only"})
      .SetLabels({0, 0}, {"a"});
  EXPECT_FALSE(builder.Build().ok());
}

TEST(DatasetBuilderTest, RejectsOutOfRangeLabel) {
  DatasetBuilder builder;
  builder.AddNumericColumn("x", {1.0}).SetLabels({7}, {"a", "b"});
  EXPECT_FALSE(builder.Build().ok());
}

TEST(DatasetBuilderTest, RejectsMissingLabels) {
  DatasetBuilder builder;
  builder.AddNumericColumn("x", {1.0});
  auto result = builder.Build();
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST(DatasetTest, ClassCounts) {
  Dataset ds = MakeToyDataset();
  auto counts = ds.ClassCounts();
  ASSERT_EQ(counts.size(), 2u);
  EXPECT_EQ(counts[0], 1u);
  EXPECT_EQ(counts[1], 2u);
}

TEST(DatasetTest, SubsetPreservesSchemaAndValues) {
  Dataset ds = MakeToyDataset();
  std::vector<size_t> rows = {2, 0};
  Dataset sub = ds.Subset(rows);
  EXPECT_EQ(sub.num_rows(), 2u);
  EXPECT_DOUBLE_EQ(sub.Numeric(0, 0), 61.0);
  EXPECT_DOUBLE_EQ(sub.Numeric(1, 0), 25.0);
  EXPECT_EQ(sub.Label(0), 1u);
  EXPECT_EQ(sub.Label(1), 0u);
  EXPECT_EQ(sub.attribute(1).categories.size(), 2u);
}

TEST(DatasetTest, ToPointSetOneHotEncodes) {
  Dataset ds = MakeToyDataset();
  auto points = ds.ToPointSet(true);
  ASSERT_TRUE(points.ok());
  EXPECT_EQ(points->dim(), 3u);  // age + 2 one-hot colors
  auto p0 = points->point(0);
  EXPECT_DOUBLE_EQ(p0[0], 25.0);
  EXPECT_DOUBLE_EQ(p0[1], 1.0);  // red
  EXPECT_DOUBLE_EQ(p0[2], 0.0);
}

TEST(DatasetTest, ToPointSetRejectsCategoricalWithoutOneHot) {
  Dataset ds = MakeToyDataset();
  EXPECT_FALSE(ds.ToPointSet(false).ok());
}

TEST(DatasetFromCsvTest, InfersTypesAndLabels) {
  auto table = ParseCsv(
      "age,color,target\n25,red,no\n40,blue,yes\n61,red,yes\n");
  ASSERT_TRUE(table.ok());
  auto ds = DatasetFromCsv(*table, "target");
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->num_rows(), 3u);
  EXPECT_EQ(ds->num_attributes(), 2u);
  EXPECT_EQ(ds->attribute(0).type, AttributeType::kNumeric);
  EXPECT_EQ(ds->attribute(1).type, AttributeType::kCategorical);
  EXPECT_EQ(ds->num_classes(), 2u);
  EXPECT_EQ(ds->class_name(ds->Label(0)), "no");
}

TEST(DatasetFromCsvTest, MissingLabelColumnIsNotFound) {
  auto table = ParseCsv("a,b\n1,2\n");
  ASSERT_TRUE(table.ok());
  auto ds = DatasetFromCsv(*table, "missing");
  EXPECT_FALSE(ds.ok());
  EXPECT_EQ(ds.status().code(), StatusCode::kNotFound);
}

TEST(DatasetFromCsvTest, MixedColumnFallsBackToCategorical) {
  auto table = ParseCsv("x,y\n1,a\nnot_a_number,b\n");
  ASSERT_TRUE(table.ok());
  auto ds = DatasetFromCsv(*table, "y");
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->attribute(0).type, AttributeType::kCategorical);
}

TEST(DatasetFromCsvTest, RaggedCsvIsRejectedBeforeDatasetConstruction) {
  // A malformed text file must fail at parse; it can never reach
  // DatasetFromCsv with rows of inconsistent width.
  auto table = ParseCsv("a,b,label\n1,2,yes\n3,no\n");
  ASSERT_FALSE(table.ok());
  EXPECT_EQ(table.status().code(), StatusCode::kInvalidArgument);
}

TEST(DatasetFromCsvTest, HeaderOnlyCsvYieldsEmptyDataset) {
  auto table = ParseCsv("a,label\n");
  ASSERT_TRUE(table.ok());
  auto ds = DatasetFromCsv(*table, "label");
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->num_rows(), 0u);
  EXPECT_EQ(ds->num_classes(), 0u);
}

TEST(DatasetFromCsvTest, UnterminatedQuoteIsRejected) {
  auto table = ParseCsv("a,label\n\"unterminated,yes\n");
  EXPECT_FALSE(table.ok());
}

TEST(DatasetBinaryTest, WriteLoadRoundTrip) {
  Dataset ds = MakeToyDataset();
  const std::string path = testing::TempDir() + "/dataset_rt.dmtb";
  ASSERT_TRUE(io::WriteDataset(ds, path).ok());
  auto loaded = io::LoadDataset(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->num_rows(), ds.num_rows());
  ASSERT_EQ(loaded->num_attributes(), ds.num_attributes());
  EXPECT_EQ(loaded->attribute(0).name, "age");
  EXPECT_EQ(loaded->attribute(1).categories,
            (std::vector<std::string>{"red", "blue"}));
  for (size_t row = 0; row < ds.num_rows(); ++row) {
    EXPECT_DOUBLE_EQ(loaded->Numeric(row, 0), ds.Numeric(row, 0));
    EXPECT_EQ(loaded->Categorical(row, 1), ds.Categorical(row, 1));
    EXPECT_EQ(loaded->Label(row), ds.Label(row));
  }
  EXPECT_EQ(loaded->class_name(0), "no");
  EXPECT_EQ(loaded->class_name(1), "yes");
}

TEST(DatasetBinaryTest, LoadMissingFileIsIOError) {
  auto loaded = io::LoadDataset(testing::TempDir() + "/no_such_dataset.dmtb");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIOError);
}

TEST(PointSetTest, AddAndAccess) {
  PointSet points(2);
  points.Add(std::vector<double>{1.0, 2.0});
  points.Add(std::vector<double>{3.0, 4.0});
  EXPECT_EQ(points.size(), 2u);
  EXPECT_DOUBLE_EQ(points.point(1)[0], 3.0);
}

TEST(PointSetTest, FromFlatValidatesShape) {
  EXPECT_TRUE(PointSet::FromFlat(2, {1, 2, 3, 4}).ok());
  EXPECT_FALSE(PointSet::FromFlat(2, {1, 2, 3}).ok());
  EXPECT_FALSE(PointSet::FromFlat(0, {}).ok());
}

TEST(PointSetTest, SubsetCopiesRows) {
  PointSet points(1);
  points.Add(std::vector<double>{10.0});
  points.Add(std::vector<double>{20.0});
  points.Add(std::vector<double>{30.0});
  std::vector<size_t> rows = {2, 0};
  PointSet sub = points.Subset(rows);
  EXPECT_EQ(sub.size(), 2u);
  EXPECT_DOUBLE_EQ(sub.point(0)[0], 30.0);
  EXPECT_DOUBLE_EQ(sub.point(1)[0], 10.0);
}

TEST(PointSetTest, BoundsComputePerDimension) {
  PointSet points(2);
  points.Add(std::vector<double>{1.0, 5.0});
  points.Add(std::vector<double>{-2.0, 7.0});
  std::vector<double> mins, maxs;
  points.Bounds(&mins, &maxs);
  EXPECT_DOUBLE_EQ(mins[0], -2.0);
  EXPECT_DOUBLE_EQ(maxs[0], 1.0);
  EXPECT_DOUBLE_EQ(mins[1], 5.0);
  EXPECT_DOUBLE_EQ(maxs[1], 7.0);
}

TEST(PointSetTest, StandardizeZeroMeanUnitVariance) {
  PointSet points(1);
  for (double v : {1.0, 2.0, 3.0, 4.0}) {
    points.Add(std::vector<double>{v});
  }
  points.Standardize();
  double sum = 0.0, sum_sq = 0.0;
  for (size_t i = 0; i < points.size(); ++i) {
    sum += points.point(i)[0];
    sum_sq += points.point(i)[0] * points.point(i)[0];
  }
  EXPECT_NEAR(sum, 0.0, 1e-12);
  EXPECT_NEAR(sum_sq / 4.0, 1.0, 1e-12);
}

TEST(PointSetTest, StandardizeConstantDimensionCenters) {
  PointSet points(1);
  points.Add(std::vector<double>{5.0});
  points.Add(std::vector<double>{5.0});
  points.Standardize();
  EXPECT_DOUBLE_EQ(points.point(0)[0], 0.0);
  EXPECT_DOUBLE_EQ(points.point(1)[0], 0.0);
}

}  // namespace
}  // namespace dmt::core
