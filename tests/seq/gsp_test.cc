#include "seq/gsp.h"

#include <gtest/gtest.h>

#include <map>

#include "gen/seqgen.h"

namespace dmt::seq {
namespace {

using core::ItemId;
using core::Sequence;
using core::SequenceDatabase;

Sequence Seq(std::vector<std::vector<ItemId>> elements) {
  Sequence s;
  s.elements = std::move(elements);
  return s;
}

/// The worked example of the AprioriAll paper (ICDE'95 §2): five customers.
SequenceDatabase PaperDatabase() {
  SequenceDatabase db;
  db.Add(Seq({{30}, {90}}));
  db.Add(Seq({{10, 20}, {30}, {40, 60, 70}}));
  db.Add(Seq({{30, 50, 70}}));
  db.Add(Seq({{30}, {40, 70}, {90}}));
  db.Add(Seq({{90}}));
  return db;
}

uint32_t SupportOf(const SeqMiningResult& result, const Sequence& pattern) {
  for (const auto& p : result.patterns) {
    if (p.sequence == pattern) return p.support;
  }
  return 0;
}

TEST(GspTest, ReproducesPaperExample) {
  SequenceDatabase db = PaperDatabase();
  SeqMiningParams params;
  params.min_support = 0.4;  // 2 of 5 customers, as in the paper
  auto result = MineGsp(db, params);
  ASSERT_TRUE(result.ok());
  // The paper's maximal answers: <{30},{90}> and <{30},{40,70}>.
  EXPECT_EQ(SupportOf(*result, Seq({{30}, {90}})), 2u);
  EXPECT_EQ(SupportOf(*result, Seq({{30}, {40, 70}})), 2u);
  // Frequent items: 30 (support 4), 40, 70 (2 each), 90 (3). 10/20/50/60
  // appear once only.
  EXPECT_EQ(SupportOf(*result, Seq({{30}})), 4u);
  EXPECT_EQ(SupportOf(*result, Seq({{90}})), 3u);
  EXPECT_EQ(SupportOf(*result, Seq({{40}})), 2u);
  EXPECT_EQ(SupportOf(*result, Seq({{10}})), 0u);
  // <{40,70}> is frequent (customers 2 and 4).
  EXPECT_EQ(SupportOf(*result, Seq({{40, 70}})), 2u);

  auto maximal = FilterMaximalSequences(result->patterns);
  std::vector<Sequence> maximal_sequences;
  for (const auto& p : maximal) maximal_sequences.push_back(p.sequence);
  EXPECT_EQ(maximal_sequences.size(), 2u);
  EXPECT_NE(std::find(maximal_sequences.begin(), maximal_sequences.end(),
                      Seq({{30}, {90}})),
            maximal_sequences.end());
  EXPECT_NE(std::find(maximal_sequences.begin(), maximal_sequences.end(),
                      Seq({{30}, {40, 70}})),
            maximal_sequences.end());
}

TEST(GspTest, SupportCountsOncePerCustomer) {
  SequenceDatabase db;
  // One customer with the pattern twice; still support 1.
  db.Add(Seq({{1}, {2}, {1}, {2}}));
  db.Add(Seq({{3}}));
  SeqMiningParams params;
  params.min_support = 0.5;
  auto result = MineGsp(db, params);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(SupportOf(*result, Seq({{1}, {2}})), 1u);
}

TEST(GspTest, OrderMatters) {
  SequenceDatabase db;
  db.Add(Seq({{1}, {2}}));
  db.Add(Seq({{1}, {2}}));
  db.Add(Seq({{2}, {1}}));
  SeqMiningParams params;
  params.min_support = 0.6;  // 2 customers
  auto result = MineGsp(db, params);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(SupportOf(*result, Seq({{1}, {2}})), 2u);
  EXPECT_EQ(SupportOf(*result, Seq({{2}, {1}})), 0u);
}

TEST(GspTest, ItemsetElementsVsSeparateElements) {
  SequenceDatabase db;
  db.Add(Seq({{1, 2}}));      // together
  db.Add(Seq({{1, 2}}));
  db.Add(Seq({{1}, {2}}));    // apart
  SeqMiningParams params;
  params.min_support = 0.6;
  auto result = MineGsp(db, params);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(SupportOf(*result, Seq({{1, 2}})), 2u);
  // <{1},{2}> only in the third customer.
  EXPECT_EQ(SupportOf(*result, Seq({{1}, {2}})), 0u);
}

TEST(GspTest, DownwardClosureOverDroppedItems) {
  gen::SequenceGenParams gen_params;
  gen_params.num_customers = 200;
  gen_params.num_items = 40;
  gen_params.num_pattern_sequences = 10;
  gen_params.num_pattern_itemsets = 40;
  gen_params.avg_transactions_per_customer = 5.0;
  auto db = gen::GenerateSequences(gen_params, 3);
  ASSERT_TRUE(db.ok());
  SeqMiningParams params;
  params.min_support = 0.05;
  auto result = MineGsp(*db, params);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->patterns.empty());
  // Every single-item-drop subsequence of a frequent pattern is frequent
  // with at least the same support.
  std::map<std::vector<std::vector<ItemId>>, uint32_t> index;
  for (const auto& p : result->patterns) {
    index[p.sequence.elements] = p.support;
  }
  for (const auto& p : result->patterns) {
    if (p.sequence.TotalItems() < 2) continue;
    for (size_t e = 0; e < p.sequence.elements.size(); ++e) {
      for (size_t o = 0; o < p.sequence.elements[e].size(); ++o) {
        Sequence sub = p.sequence;
        sub.elements[e].erase(sub.elements[e].begin() +
                              static_cast<std::ptrdiff_t>(o));
        if (sub.elements[e].empty()) {
          sub.elements.erase(sub.elements.begin() +
                             static_cast<std::ptrdiff_t>(e));
        }
        auto it = index.find(sub.elements);
        ASSERT_NE(it, index.end()) << FormatSequencePattern(p);
        EXPECT_GE(it->second, p.support);
      }
    }
  }
}

TEST(GspTest, AgreesWithBruteForceOnTinyData) {
  // Brute force: enumerate candidate patterns over a tiny alphabet by
  // recursive extension, counting containment directly.
  SequenceDatabase db;
  db.Add(Seq({{0, 1}, {2}}));
  db.Add(Seq({{0}, {1}, {2}}));
  db.Add(Seq({{1, 2}}));
  db.Add(Seq({{0, 1, 2}}));
  SeqMiningParams params;
  params.min_support = 0.5;  // 2 customers
  auto result = MineGsp(db, params);
  ASSERT_TRUE(result.ok());

  auto support_in_db = [&](const Sequence& pattern) {
    uint32_t support = 0;
    for (size_t c = 0; c < db.size(); ++c) {
      if (db.sequence(c).Contains(pattern)) ++support;
    }
    return support;
  };
  // All reported supports are exact.
  for (const auto& p : result->patterns) {
    EXPECT_EQ(p.support, support_in_db(p.sequence))
        << FormatSequencePattern(p);
    EXPECT_GE(p.support, 2u);
  }
  // Spot-check patterns the miner must find.
  EXPECT_EQ(SupportOf(*result, Seq({{0}, {2}})), 2u);
  EXPECT_EQ(SupportOf(*result, Seq({{1}, {2}})), 2u);
  EXPECT_EQ(SupportOf(*result, Seq({{0, 1}})), 2u);
  EXPECT_EQ(SupportOf(*result, Seq({{1, 2}})), 2u);
  // And one it must not over-count.
  EXPECT_EQ(SupportOf(*result, Seq({{0}, {1}, {2}})), 0u);  // support 1
}

TEST(GspTest, MaxPatternItemsRespected) {
  SequenceDatabase db = PaperDatabase();
  SeqMiningParams params;
  params.min_support = 0.4;
  params.max_pattern_items = 1;
  auto result = MineGsp(db, params);
  ASSERT_TRUE(result.ok());
  for (const auto& p : result->patterns) {
    EXPECT_EQ(p.sequence.TotalItems(), 1u);
  }
}

TEST(GspTest, EmptyDatabase) {
  SequenceDatabase db;
  SeqMiningParams params;
  auto result = MineGsp(db, params);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->patterns.empty());
}

TEST(GspTest, ValidatesParams) {
  SequenceDatabase db = PaperDatabase();
  SeqMiningParams params;
  params.min_support = 0.0;
  EXPECT_FALSE(MineGsp(db, params).ok());
  params.min_support = 1.5;
  EXPECT_FALSE(MineGsp(db, params).ok());
}

TEST(GspTest, PassStatsTrackCandidates) {
  SequenceDatabase db = PaperDatabase();
  SeqMiningParams params;
  params.min_support = 0.4;
  auto result = MineGsp(db, params);
  ASSERT_TRUE(result.ok());
  ASSERT_GE(result->passes.size(), 2u);
  EXPECT_EQ(result->passes[0].pass, 1u);
  for (const auto& pass : result->passes) {
    EXPECT_GE(pass.candidates, pass.frequent);
  }
}

TEST(GspTest, FormatSequencePatternReadable) {
  SequencePattern p;
  p.sequence = Seq({{1, 2}, {3}});
  p.support = 4;
  EXPECT_EQ(FormatSequencePattern(p), "<{1, 2} {3}> (support=4)");
}

}  // namespace
}  // namespace dmt::seq
