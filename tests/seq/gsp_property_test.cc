// Property sweep: GSP must agree exactly with an exhaustive reference
// miner on random sequence databases, across seeds, densities, and
// support thresholds.
#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "core/rng.h"
#include "seq/gsp.h"

namespace dmt::seq {
namespace {

using core::ItemId;
using core::Sequence;
using core::SequenceDatabase;

constexpr size_t kAlphabet = 4;
constexpr size_t kMaxItems = 3;

/// All non-empty sorted subsets of {0..kAlphabet-1} with <= kMaxItems.
std::vector<std::vector<ItemId>> AllElements() {
  std::vector<std::vector<ItemId>> out;
  for (uint32_t mask = 1; mask < (1u << kAlphabet); ++mask) {
    std::vector<ItemId> element;
    for (ItemId item = 0; item < kAlphabet; ++item) {
      if (mask & (1u << item)) element.push_back(item);
    }
    if (element.size() <= kMaxItems) out.push_back(element);
  }
  return out;
}

/// All candidate sequences with TotalItems() <= kMaxItems.
std::vector<Sequence> AllPatterns() {
  auto elements = AllElements();
  std::vector<Sequence> patterns;
  // Length 1.
  for (const auto& e : elements) {
    Sequence s;
    s.elements = {e};
    patterns.push_back(s);
  }
  // Length 2 and 3.
  for (const auto& a : elements) {
    for (const auto& b : elements) {
      if (a.size() + b.size() > kMaxItems) continue;
      Sequence s;
      s.elements = {a, b};
      patterns.push_back(s);
      for (const auto& c : elements) {
        if (a.size() + b.size() + c.size() > kMaxItems) continue;
        Sequence t;
        t.elements = {a, b, c};
        patterns.push_back(t);
      }
    }
  }
  return patterns;
}

SequenceDatabase RandomDatabase(uint64_t seed, size_t customers,
                                double density) {
  core::Rng rng(seed);
  SequenceDatabase db;
  for (size_t c = 0; c < customers; ++c) {
    Sequence s;
    size_t elements = 1 + rng.UniformU64(5);
    for (size_t e = 0; e < elements; ++e) {
      std::vector<ItemId> element;
      for (ItemId item = 0; item < kAlphabet; ++item) {
        if (rng.Bernoulli(density)) element.push_back(item);
      }
      if (!element.empty()) s.elements.push_back(element);
    }
    if (!s.elements.empty()) db.Add(s);
  }
  return db;
}

struct SweepCase {
  uint64_t seed;
  double density;
  double min_support;
};

class GspPropertyTest : public testing::TestWithParam<SweepCase> {};

TEST_P(GspPropertyTest, MatchesExhaustiveReference) {
  const SweepCase& sweep = GetParam();
  SequenceDatabase db = RandomDatabase(sweep.seed, 60, sweep.density);
  ASSERT_FALSE(db.empty());
  SeqMiningParams params;
  params.min_support = sweep.min_support;
  params.max_pattern_items = kMaxItems;
  auto mined = MineGsp(db, params);
  ASSERT_TRUE(mined.ok());

  // Reference: count every candidate pattern directly.
  auto min_count = static_cast<uint32_t>(std::max<int64_t>(
      1,
      static_cast<int64_t>(std::ceil(
          sweep.min_support * static_cast<double>(db.size()) - 1e-9))));
  std::map<std::vector<std::vector<ItemId>>, uint32_t> expected;
  for (const Sequence& pattern : AllPatterns()) {
    uint32_t support = 0;
    for (size_t c = 0; c < db.size(); ++c) {
      if (db.sequence(c).Contains(pattern)) ++support;
    }
    if (support >= min_count) expected[pattern.elements] = support;
  }

  std::map<std::vector<std::vector<ItemId>>, uint32_t> actual;
  for (const auto& p : mined->patterns) {
    actual[p.sequence.elements] = p.support;
  }
  EXPECT_EQ(actual.size(), expected.size());
  for (const auto& [elements, support] : expected) {
    auto it = actual.find(elements);
    ASSERT_NE(it, actual.end());
    EXPECT_EQ(it->second, support);
  }
  for (const auto& [elements, support] : actual) {
    EXPECT_TRUE(expected.contains(elements));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GspPropertyTest,
    testing::Values(SweepCase{1, 0.3, 0.1}, SweepCase{2, 0.3, 0.2},
                    SweepCase{3, 0.5, 0.1}, SweepCase{4, 0.5, 0.3},
                    SweepCase{5, 0.2, 0.05}, SweepCase{6, 0.4, 0.15},
                    SweepCase{7, 0.6, 0.25}, SweepCase{8, 0.35, 0.08}),
    [](const testing::TestParamInfo<SweepCase>& info) {
      return "seed" + std::to_string(info.param.seed);
    });

}  // namespace
}  // namespace dmt::seq
