// Differential tests for the parallel GSP support-counting kernels: mining
// with num_threads in {2, 4} must produce results identical to the serial
// run on seeded synthetic customer sequences — both the specialized pass-2
// counter and the generic containment scans are partitioned.
#include <gtest/gtest.h>

#include "core/check.h"
#include "gen/seqgen.h"
#include "obs/metrics.h"
#include "seq/gsp.h"

namespace dmt::seq {
namespace {

core::SequenceDatabase Workload(uint64_t seed) {
  gen::SequenceGenParams params;
  params.num_customers = 200;
  params.avg_transactions_per_customer = 6.0;
  params.avg_items_per_transaction = 2.5;
  params.avg_pattern_elements = 4.0;
  params.avg_pattern_itemset_size = 1.25;
  params.num_items = 100;
  params.num_pattern_sequences = 50;
  params.num_pattern_itemsets = 200;
  auto db = gen::GenerateSequences(params, seed);
  DMT_CHECK(db.ok());
  return std::move(db).value();
}

void ExpectSameResult(const SeqMiningResult& serial,
                      const SeqMiningResult& parallel, size_t threads) {
  EXPECT_EQ(serial.patterns, parallel.patterns)
      << "patterns diverged at num_threads=" << threads;
  ASSERT_EQ(serial.passes.size(), parallel.passes.size());
  for (size_t p = 0; p < serial.passes.size(); ++p) {
    EXPECT_EQ(serial.passes[p].pass, parallel.passes[p].pass);
    EXPECT_EQ(serial.passes[p].candidates, parallel.passes[p].candidates);
    EXPECT_EQ(serial.passes[p].frequent, parallel.passes[p].frequent);
  }
}

TEST(GspParallelDiffTest, MatchesSerialAcrossThreadCounts) {
  auto db = Workload(/*seed=*/71);
  SeqMiningParams params;
  params.min_support = 0.04;
  auto serial = MineGsp(db, params);
  ASSERT_TRUE(serial.ok());
  EXPECT_FALSE(serial->patterns.empty());
  // The run must reach pass 3+ so the generic containment counter is
  // exercised in addition to the specialized pass-2 path.
  EXPECT_GE(serial->passes.size(), 3u);
  for (size_t threads : {2u, 4u}) {
    params.num_threads = threads;
    auto parallel = MineGsp(db, params);
    ASSERT_TRUE(parallel.ok());
    ExpectSameResult(*serial, *parallel, threads);
  }
}

TEST(GspParallelDiffTest, LowerSupportDeeperPassesMatch) {
  auto db = Workload(/*seed=*/72);
  SeqMiningParams params;
  params.min_support = 0.03;
  auto serial = MineGsp(db, params);
  ASSERT_TRUE(serial.ok());
  params.num_threads = 4;
  auto parallel = MineGsp(db, params);
  ASSERT_TRUE(parallel.ok());
  ExpectSameResult(*serial, *parallel, 4);
}

TEST(GspParallelDiffTest, ParallelRunsAreRepeatable) {
  auto db = Workload(/*seed=*/73);
  SeqMiningParams params;
  params.min_support = 0.04;
  params.num_threads = 4;
  auto first = MineGsp(db, params);
  auto second = MineGsp(db, params);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->patterns, second->patterns);
}

TEST(GspParallelDiffTest, MoreThreadsThanCustomers) {
  core::SequenceDatabase tiny;
  core::Sequence s1;
  s1.elements = {{0, 1}, {2}};
  core::Sequence s2;
  s2.elements = {{0}, {1, 2}};
  core::Sequence s3;
  s3.elements = {{0, 1}, {1, 2}};
  tiny.Add(s1);
  tiny.Add(s2);
  tiny.Add(s3);
  SeqMiningParams params;
  params.min_support = 0.5;
  auto serial = MineGsp(tiny, params);
  params.num_threads = 8;
  auto parallel = MineGsp(tiny, params);
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(parallel.ok());
  EXPECT_EQ(serial->patterns, parallel->patterns);
}

TEST(RegistryParallelDiffTest, CounterTotalsIdenticalAcrossThreadCounts) {
  // GSP's registry totals (candidates, frequent, passes) must be
  // bit-identical at every thread count, including more threads than
  // customers (7 against a 3-sequence database).
  auto db = Workload(/*seed=*/74);
  core::SequenceDatabase tiny;
  core::Sequence s1;
  s1.elements = {{0, 1}, {2}};
  core::Sequence s2;
  s2.elements = {{0}, {1, 2}};
  core::Sequence s3;
  s3.elements = {{0, 1}, {1, 2}};
  tiny.Add(s1);
  tiny.Add(s2);
  tiny.Add(s3);
  std::vector<std::pair<std::string, uint64_t>> baseline;
  for (size_t threads : {0u, 1u, 2u, 7u}) {
    obs::Registry::Global().Reset();
    SeqMiningParams params;
    params.min_support = 0.04;
    params.num_threads = threads;
    ASSERT_TRUE(MineGsp(db, params).ok());
    SeqMiningParams tiny_params;
    tiny_params.min_support = 0.5;
    tiny_params.num_threads = threads;
    ASSERT_TRUE(MineGsp(tiny, tiny_params).ok());
    auto snapshot = obs::Registry::Global().CounterSnapshot();
    if (threads == 0) {
      baseline = snapshot;
      EXPECT_FALSE(baseline.empty());
    } else {
      EXPECT_EQ(snapshot, baseline)
          << "registry totals diverged at num_threads=" << threads;
    }
  }
}

}  // namespace
}  // namespace dmt::seq
