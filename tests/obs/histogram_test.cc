// Coverage for the deterministic histogram metric (obs/metrics.h): the
// fixed bucket layout (boundary ±1 sweep over every bound), nearest-rank
// percentile readout, record/merge-order invariance (the property the
// serving telemetry's bit-identity tests build on), ShardedHistogram
// drain-in-order semantics, and registry snapshot/reset behaviour.
#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

namespace dmt::obs {
namespace {

namespace hb = histogram_buckets;

TEST(HistogramBucketsTest, BoundarySweepPlusMinusOne) {
  // For every non-overflow bucket: its inclusive upper bound lands in it,
  // and upper bound + 1 lands in the next bucket.
  for (size_t i = 0; i + 1 < hb::kNumBuckets; ++i) {
    const uint64_t bound = hb::BucketUpperBound(i);
    EXPECT_EQ(hb::BucketIndex(bound), i) << "bound " << bound;
    EXPECT_EQ(hb::BucketIndex(bound + 1), i + 1) << "bound " << bound;
    if (i > 0) {
      // Lower edge: one past the previous bound is the first value here.
      EXPECT_EQ(hb::BucketIndex(hb::BucketUpperBound(i - 1) + 1), i);
    }
  }
}

TEST(HistogramBucketsTest, UpperBoundsStrictlyIncrease) {
  for (size_t i = 1; i < hb::kNumBuckets; ++i) {
    EXPECT_GT(hb::BucketUpperBound(i), hb::BucketUpperBound(i - 1))
        << "bucket " << i;
  }
  EXPECT_EQ(hb::BucketUpperBound(hb::kNumBuckets - 1), UINT64_MAX);
}

TEST(HistogramBucketsTest, ExtremesAndOverflow) {
  EXPECT_EQ(hb::BucketIndex(0), 0u);
  EXPECT_EQ(hb::BucketIndex(16), 16u);
  EXPECT_EQ(hb::BucketIndex(17), hb::kLinearBuckets);
  EXPECT_EQ(hb::BucketIndex(UINT64_MAX), hb::kNumBuckets - 1);
  // Last bounded bucket ends at 32·2^31 = 2^36.
  EXPECT_EQ(hb::BucketUpperBound(hb::kNumBuckets - 2), uint64_t{1} << 36);
  EXPECT_EQ(hb::BucketIndex(uint64_t{1} << 36), hb::kNumBuckets - 2);
  EXPECT_EQ(hb::BucketIndex((uint64_t{1} << 36) + 1), hb::kNumBuckets - 1);
}

TEST(HistogramBucketsTest, RelativeErrorBounded) {
  // Any value maps to a bucket whose upper bound overestimates it by at
  // most one sub-bucket width — 1/8 of the octave's lower edge.
  for (uint64_t v : {1ull, 16ull, 17ull, 100ull, 12345ull, 1000000ull,
                     987654321ull, (1ull << 35) + 7}) {
    const uint64_t bound = hb::BucketUpperBound(hb::BucketIndex(v));
    EXPECT_GE(bound, v);
    EXPECT_LE(bound - v, v / 8 + 1) << "value " << v;
  }
}

TEST(HistogramTest, EmptyReadout) {
  Histogram h("test/hist/empty");
  const HistogramData data = h.Data();
  EXPECT_EQ(data.count, 0u);
  EXPECT_EQ(data.sum, 0u);
  ASSERT_EQ(data.buckets.size(), hb::kNumBuckets);
  for (double p : {0.0, 50.0, 99.0, 100.0}) {
    EXPECT_EQ(data.Percentile(p), 0u) << "p" << p;
  }
  EXPECT_EQ(data.Mean(), 0.0);
}

TEST(HistogramTest, DefaultConstructedIsNoopSink) {
  Histogram h;
  h.Record(42);
  const HistogramData data = h.Data();
  EXPECT_EQ(data.count, 0u);
  ASSERT_EQ(data.buckets.size(), hb::kNumBuckets);
  EXPECT_EQ(h.name(), "");
}

TEST(HistogramTest, NearestRankPercentilesOnKnownSamples) {
  // Values <= 16 occupy exact buckets, so percentiles come back exact.
  Histogram h("test/hist/known");
  for (uint64_t v : {5, 1, 4, 2, 3}) h.Record(v);
  const HistogramData data = h.Data();
  ASSERT_EQ(data.count, 5u);
  EXPECT_EQ(data.sum, 15u);
  // Nearest rank over {1,2,3,4,5}: rank = ceil(p/100 * 5), floor 1.
  EXPECT_EQ(data.Percentile(0.0), 1u);
  EXPECT_EQ(data.Percentile(10.0), 1u);
  EXPECT_EQ(data.Percentile(20.0), 1u);
  EXPECT_EQ(data.Percentile(50.0), 3u);
  EXPECT_EQ(data.Percentile(90.0), 5u);
  EXPECT_EQ(data.Percentile(100.0), 5u);
  EXPECT_EQ(data.Mean(), 3.0);
}

TEST(HistogramTest, OverflowSamplesReadBackAsUint64Max) {
  Histogram h("test/hist/overflow");
  h.Record(1);
  h.Record(UINT64_MAX);
  const HistogramData data = h.Data();
  EXPECT_EQ(data.count, 2u);
  EXPECT_EQ(data.Percentile(50.0), 1u);
  EXPECT_EQ(data.Percentile(100.0), UINT64_MAX);
}

TEST(HistogramTest, HandlesShareOneRegistrySlot) {
  Histogram a("test/hist/shared");
  Histogram b("test/hist/shared");
  a.Record(3);
  b.Record(7);
  EXPECT_EQ(a.Data().count, 2u);
  EXPECT_EQ(b.Data().sum, 10u);
  EXPECT_EQ(a.name(), "test/hist/shared");
}

TEST(HistogramTest, BucketArrayInvariantUnderRecordingOrder) {
  // The same sample multiset in different orders yields bit-identical
  // bucket arrays and sums — the property the serving determinism tests
  // rely on.
  std::vector<uint64_t> samples;
  for (uint64_t i = 0; i < 257; ++i) samples.push_back((i * 131) % 257);

  Histogram forward("test/hist/order_fwd");
  for (uint64_t v : samples) forward.Record(v);
  Histogram backward("test/hist/order_bwd");
  for (size_t i = samples.size(); i > 0; --i) {
    backward.Record(samples[i - 1]);
  }

  const HistogramData f = forward.Data();
  const HistogramData b = backward.Data();
  EXPECT_EQ(f.count, b.count);
  EXPECT_EQ(f.sum, b.sum);
  EXPECT_EQ(f.buckets, b.buckets);
  for (double p = 0.5; p <= 100.0; p += 0.5) {
    ASSERT_EQ(f.Percentile(p), b.Percentile(p)) << "p" << p;
  }
}

TEST(ShardedHistogramTest, DrainMatchesDirectRecording) {
  Histogram direct("test/hist/sharded_direct");
  Histogram sharded_target("test/hist/sharded_merged");
  ShardedHistogram sharded(sharded_target, 3);
  EXPECT_EQ(sharded.num_shards(), 3u);

  std::vector<uint64_t> samples;
  for (uint64_t i = 0; i < 100; ++i) samples.push_back(i * 37 % 500);
  for (size_t i = 0; i < samples.size(); ++i) {
    direct.Record(samples[i]);
    sharded.Record(i % 3, samples[i]);
  }
  // Nothing reaches the registry before the drain.
  EXPECT_EQ(sharded_target.Data().count, 0u);
  sharded.Drain();

  const HistogramData d = direct.Data();
  const HistogramData s = sharded_target.Data();
  EXPECT_EQ(d.count, s.count);
  EXPECT_EQ(d.sum, s.sum);
  EXPECT_EQ(d.buckets, s.buckets);
}

TEST(ShardedHistogramTest, ReusableAcrossDrains) {
  Histogram target("test/hist/sharded_reuse");
  ShardedHistogram sharded(target, 2);
  sharded.Record(0, 4);
  sharded.Record(1, 8);
  sharded.Drain();
  EXPECT_EQ(target.Data().count, 2u);
  // Drain zeroed the shards: a second drain adds nothing.
  sharded.Drain();
  EXPECT_EQ(target.Data().count, 2u);
  sharded.Record(0, 15);
  sharded.Drain();
  const HistogramData data = target.Data();
  EXPECT_EQ(data.count, 3u);
  EXPECT_EQ(data.sum, 27u);
}

TEST(RegistryHistogramTest, SnapshotSortedAndValueLookup) {
  Histogram b("test/hist/registry_b");
  Histogram a("test/hist/registry_a");
  a.Record(1);
  b.Record(2);
  b.Record(3);

  const auto snapshot = Registry::Global().HistogramSnapshot();
  for (size_t i = 1; i < snapshot.size(); ++i) {
    EXPECT_LT(snapshot[i - 1].name, snapshot[i].name) << "unsorted";
  }
  const HistogramData found =
      Registry::Global().HistogramValue("test/hist/registry_b");
  EXPECT_EQ(found.count, 2u);
  EXPECT_EQ(found.sum, 5u);

  const HistogramData missing =
      Registry::Global().HistogramValue("test/hist/never_registered");
  EXPECT_EQ(missing.count, 0u);
  ASSERT_EQ(missing.buckets.size(), hb::kNumBuckets);
}

TEST(RegistryHistogramTest, ResetZeroesValuesButKeepsHandles) {
  Histogram h("test/hist/reset");
  h.Record(9);
  ASSERT_EQ(h.Data().count, 1u);
  Registry::Global().Reset();
  EXPECT_EQ(h.Data().count, 0u);
  EXPECT_EQ(h.Data().sum, 0u);
  h.Record(2);  // the handle survives the reset
  EXPECT_EQ(h.Data().count, 1u);
  EXPECT_EQ(h.Data().sum, 2u);
}

TEST(HistogramTest, ConcurrentRecordsAllLand) {
  // Run under TSan in check.sh: concurrent Record() on one slot must be
  // race-free, and totals must equal the recorded multiset regardless of
  // interleaving.
  Histogram h("test/hist/concurrent");
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        h.Record((t * kPerThread + i) % 1000);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  Histogram reference("test/hist/concurrent_ref");
  for (int t = 0; t < kThreads; ++t) {
    for (uint64_t i = 0; i < kPerThread; ++i) {
      reference.Record((t * kPerThread + i) % 1000);
    }
  }
  const HistogramData got = h.Data();
  const HistogramData want = reference.Data();
  EXPECT_EQ(got.count, kThreads * kPerThread);
  EXPECT_EQ(got.sum, want.sum);
  EXPECT_EQ(got.buckets, want.buckets);
}

}  // namespace
}  // namespace dmt::obs
