#include "obs/trace.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "obs/metrics.h"

namespace dmt::obs {
namespace {

/// Resets the sink to a known state: collecting in memory, no buffered
/// events. Tests in this binary share the process-global sink.
void FreshCollection() {
  TraceSink::Global().set_enabled(true);
  TraceSink::Global().Clear();
}

std::string ReadAll(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(SpanTest, RecordsOneEventPerScope) {
  FreshCollection();
  {
    Span span("test/trace/phase");
  }
  EXPECT_EQ(TraceSink::Global().event_count(), 1u);
  EXPECT_EQ(TraceSink::Global().dropped_events(), 0u);
}

TEST(SpanTest, DisabledSpanRecordsNothing) {
  FreshCollection();
  TraceSink::Global().set_enabled(false);
  {
    Span span("test/trace/disabled");
    span.AddArg("k", 3);
  }
  EXPECT_EQ(TraceSink::Global().event_count(), 0u);
}

TEST(SpanTest, AggregatesGroupByName) {
  FreshCollection();
  for (int i = 0; i < 3; ++i) {
    Span span("test/trace/repeated");
  }
  {
    Span span("test/trace/once");
  }
  auto aggregates = TraceSink::Global().Aggregates();
  ASSERT_EQ(aggregates.size(), 2u);
  // std::map ordering: "once" < "repeated".
  EXPECT_EQ(aggregates[0].name, "test/trace/once");
  EXPECT_EQ(aggregates[0].count, 1u);
  EXPECT_EQ(aggregates[1].name, "test/trace/repeated");
  EXPECT_EQ(aggregates[1].count, 3u);
  EXPECT_GE(aggregates[1].wall_ms, 0.0);
  EXPECT_GE(aggregates[1].cpu_ms, 0.0);
}

TEST(SpanTest, AttachCounterRecordsDeltaNotTotal) {
  FreshCollection();
  Counter counter("test/trace/attached");
  counter.Add(50);  // pre-span growth must not appear in the arg
  {
    Span span("test/trace/with_counter");
    span.AttachCounter(counter);
    counter.Add(7);
  }
  // The delta lands in the flushed JSON args; check via Flush below
  // through the aggregate path: one event was recorded.
  EXPECT_EQ(TraceSink::Global().event_count(), 1u);
}

TEST(TraceSinkTest, StopFlushesChromeTraceJson) {
  const std::string path = testing::TempDir() + "dmt_trace_test.json";
  TraceSink::Global().Clear();
  TraceSink::Global().Start(path);
  Counter counter("test/trace/flush_counter");
  {
    Span span("test/trace/flushed");
    span.AddArg("k", 3);
    span.AttachCounter(counter);
    counter.Add(11);
  }
  TraceSink::Global().Stop();
  const std::string json = ReadAll(path);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"test/trace/flushed\""),
            std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"k\": 3"), std::string::npos);
  // Attached counter serialized as its delta across the span.
  EXPECT_NE(json.find("\"test/trace/flush_counter\": 11"),
            std::string::npos);
  EXPECT_NE(json.find("\"dmtCounters\""), std::string::npos);
  EXPECT_NE(json.find("\"dmtDroppedEvents\": 0"), std::string::npos);
  EXPECT_FALSE(TraceSink::Global().enabled());
}

TEST(TraceSinkTest, ClearDiscardsBufferedEvents) {
  FreshCollection();
  {
    Span span("test/trace/cleared");
  }
  ASSERT_EQ(TraceSink::Global().event_count(), 1u);
  TraceSink::Global().Clear();
  EXPECT_EQ(TraceSink::Global().event_count(), 0u);
  EXPECT_TRUE(TraceSink::Global().Aggregates().empty());
  TraceSink::Global().set_enabled(false);
}

TEST(TraceSinkTest, ThreadIdIsStablePerThread) {
  uint32_t first = TraceSink::Global().ThreadId();
  uint32_t second = TraceSink::Global().ThreadId();
  EXPECT_EQ(first, second);
  EXPECT_GT(first, 0u);
}

TEST(TraceSinkTest, EpochAdvances) {
  double a = TraceSink::Global().EpochSeconds();
  double b = TraceSink::Global().EpochSeconds();
  EXPECT_GE(b, a);
}

}  // namespace
}  // namespace dmt::obs
