#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <thread>
#include <vector>

namespace dmt::obs {
namespace {

TEST(CounterTest, HandlesShareOneRegistrySlot) {
  Counter a("test/metrics/shared");
  Counter b("test/metrics/shared");
  a.Add(5);
  b.Increment();
  EXPECT_EQ(a.value(), 6u);
  EXPECT_EQ(b.value(), 6u);
  EXPECT_EQ(a.name(), "test/metrics/shared");
}

TEST(CounterTest, DefaultConstructedIsNoopSink) {
  Counter c;
  c.Add(42);
  c.Increment();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(c.name(), "");
}

TEST(CounterTest, CopiedHandleStaysLive) {
  Counter original("test/metrics/copied");
  Counter copy = original;
  copy.Add(3);
  EXPECT_EQ(original.value(), 3u);
}

TEST(GaugeTest, SetStoresLastValue) {
  Gauge g("test/metrics/gauge");
  g.Set(1.5);
  g.Set(-2.25);
  EXPECT_EQ(g.value(), -2.25);
  EXPECT_EQ(g.name(), "test/metrics/gauge");
}

TEST(GaugeTest, DefaultConstructedIsNoopSink) {
  Gauge g;
  g.Set(7.0);
  EXPECT_EQ(g.value(), 0.0);
}

TEST(CounterDeltaTest, SeesOnlyAddsAfterConstruction) {
  Counter c("test/metrics/delta");
  c.Add(100);
  CounterDelta delta(c);
  EXPECT_EQ(delta.Value(), 0u);
  c.Add(7);
  c.Increment();
  EXPECT_EQ(delta.Value(), 8u);
  EXPECT_EQ(c.value(), 108u);
}

TEST(ShardedCounterTest, DrainMergesEveryShard) {
  Counter c("test/metrics/sharded");
  ShardedCounter sharded(c, 4);
  EXPECT_EQ(sharded.num_shards(), 4u);
  sharded.Add(0, 1);
  sharded.Add(2, 10);
  sharded.Add(3, 100);
  EXPECT_EQ(c.value(), 0u) << "shards must not publish before Drain";
  sharded.Drain();
  EXPECT_EQ(c.value(), 111u);
}

TEST(ShardedCounterTest, ReusableAcrossParallelRegions) {
  Counter c("test/metrics/sharded_reuse");
  ShardedCounter sharded(c, 2);
  sharded.Add(0, 5);
  sharded.Drain();
  sharded.Add(1, 6);
  sharded.Drain();
  EXPECT_EQ(c.value(), 11u) << "Drain must zero the shards";
}

TEST(ShardedCounterTest, ZeroChunksGetsOneShard) {
  Counter c("test/metrics/sharded_zero");
  ShardedCounter sharded(c, 0);
  EXPECT_EQ(sharded.num_shards(), 1u);
  sharded.Add(0, 9);
  sharded.Drain();
  EXPECT_EQ(c.value(), 9u);
}

TEST(RegistryTest, SnapshotIsSortedByName) {
  Counter b("test/metrics/sort/b");
  Counter a("test/metrics/sort/a");
  a.Add(1);
  b.Add(2);
  auto snapshot = Registry::Global().CounterSnapshot();
  EXPECT_TRUE(std::is_sorted(
      snapshot.begin(), snapshot.end(),
      [](const auto& x, const auto& y) { return x.first < y.first; }));
}

TEST(RegistryTest, CounterValueLooksUpByName) {
  Counter c("test/metrics/lookup");
  c.Add(13);
  EXPECT_EQ(Registry::Global().CounterValue("test/metrics/lookup"), 13u);
  EXPECT_EQ(Registry::Global().CounterValue("test/metrics/never"), 0u);
}

TEST(RegistryTest, ResetZeroesValuesButKeepsHandles) {
  Counter c("test/metrics/reset");
  Gauge g("test/metrics/reset_gauge");
  c.Add(5);
  g.Set(3.0);
  Registry::Global().Reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0.0);
  c.Add(2);
  EXPECT_EQ(c.value(), 2u) << "handles must stay valid across Reset";
}

// TSan target: concurrent registration and concurrent Add through
// independent handles must be race-free (the registry's own locking plus
// atomic slots; the deterministic-merge discipline is about values, not
// memory safety).
TEST(RegistryTest, ConcurrentRegistrationAndAddsAreRaceFree) {
  constexpr int kThreads = 4;
  constexpr int kAddsPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      Counter shared("test/metrics/concurrent/shared");
      Counter own("test/metrics/concurrent/own_" + std::to_string(t));
      for (int i = 0; i < kAddsPerThread; ++i) {
        shared.Increment();
        own.Increment();
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  Counter shared("test/metrics/concurrent/shared");
  EXPECT_EQ(shared.value(),
            static_cast<uint64_t>(kThreads) * kAddsPerThread);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(Registry::Global().CounterValue(
                  "test/metrics/concurrent/own_" + std::to_string(t)),
              static_cast<uint64_t>(kAddsPerThread));
  }
}

}  // namespace
}  // namespace dmt::obs
