// Coverage for the registry exposition module (obs/expose.h): Prometheus
// name mangling, the text format invariants (cumulative buckets monotone,
// `_count` == "+Inf" bucket, `_sum` exact), and the JSON snapshot shape.
// The registry is process-global, so every assertion greps for this
// test's own metric names instead of assuming an otherwise-empty
// registry.
#include "obs/expose.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace dmt::obs {
namespace {

/// Lines of `text` starting with `prefix`.
std::vector<std::string> LinesWithPrefix(const std::string& text,
                                         const std::string& prefix) {
  std::vector<std::string> out;
  std::istringstream stream(text);
  std::string line;
  while (std::getline(stream, line)) {
    if (line.rfind(prefix, 0) == 0) out.push_back(line);
  }
  return out;
}

TEST(PrometheusNameTest, ManglesSlashesAndPrefixes) {
  EXPECT_EQ(PrometheusName("serve/cache_hits"), "dmt_serve_cache_hits");
  EXPECT_EQ(PrometheusName("serve/latency/total_us"),
            "dmt_serve_latency_total_us");
  EXPECT_EQ(PrometheusName("weird-name.with spaces"),
            "dmt_weird_name_with_spaces");
  EXPECT_EQ(PrometheusName("ok_colon:kept"), "dmt_ok_colon:kept");
}

TEST(RenderPrometheusTextTest, CountersAndGauges) {
  Counter c("test/expose/requests");
  c.Add(41);
  c.Increment();
  Gauge g("test/expose/load");
  g.Set(0.5);

  const std::string text = RenderPrometheusText();
  EXPECT_NE(text.find("# TYPE dmt_test_expose_requests counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("\ndmt_test_expose_requests 42\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE dmt_test_expose_load gauge\n"),
            std::string::npos);
  EXPECT_NE(text.find("\ndmt_test_expose_load 0.5\n"), std::string::npos);
}

TEST(RenderPrometheusTextTest, HistogramSeriesAreConsistent) {
  Histogram h("test/expose/hist_us");
  // Samples spanning exact buckets, a log bucket, and the overflow
  // bucket.
  for (uint64_t v : {0, 3, 3, 16, 100}) h.Record(v);
  h.Record(UINT64_MAX);

  const std::string text = RenderPrometheusText();
  EXPECT_NE(text.find("# TYPE dmt_test_expose_hist_us histogram\n"),
            std::string::npos);

  const auto buckets =
      LinesWithPrefix(text, "dmt_test_expose_hist_us_bucket{le=\"");
  ASSERT_FALSE(buckets.empty());
  // Cumulative counts are monotone non-decreasing in emitted order.
  uint64_t previous = 0;
  for (const std::string& line : buckets) {
    const size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    const uint64_t cumulative = std::stoull(line.substr(space + 1));
    EXPECT_GE(cumulative, previous) << line;
    previous = cumulative;
  }
  // The final series is "+Inf" and equals _count.
  EXPECT_NE(buckets.back().find("{le=\"+Inf\"}"), std::string::npos);
  EXPECT_EQ(previous, 6u);
  EXPECT_NE(text.find("\ndmt_test_expose_hist_us_count 6\n"),
            std::string::npos);
  // Exact per-bucket shape: value 0 -> 1 sample, value 3 -> 2 more.
  EXPECT_NE(text.find("dmt_test_expose_hist_us_bucket{le=\"0\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("dmt_test_expose_hist_us_bucket{le=\"3\"} 3\n"),
            std::string::npos);
  // Empty buckets between samples are elided: no le="1" series.
  EXPECT_EQ(text.find("dmt_test_expose_hist_us_bucket{le=\"1\"}"),
            std::string::npos);
}

TEST(RenderJsonSnapshotTest, ContainsAllThreeSections) {
  Counter c("test/expose/json_counter");
  c.Add(7);
  Gauge g("test/expose/json_gauge");
  g.Set(2.5);
  Histogram h("test/expose/json_hist");
  for (uint64_t v : {1, 2, 3, 4, 5}) h.Record(v);

  const std::string json = RenderJsonSnapshot();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"test/expose/json_counter\": 7"),
            std::string::npos);
  EXPECT_NE(json.find("\"test/expose/json_gauge\": 2.5"),
            std::string::npos);
  // Histogram object: derived stats plus non-empty buckets keyed by
  // inclusive upper bound.
  const size_t hist = json.find("\"test/expose/json_hist\": {");
  ASSERT_NE(hist, std::string::npos);
  const std::string object = json.substr(hist, json.find('}', hist) - hist);
  EXPECT_NE(object.find("\"count\": 5"), std::string::npos);
  EXPECT_NE(object.find("\"sum\": 15"), std::string::npos);
  EXPECT_NE(object.find("\"mean\": 3"), std::string::npos);
  EXPECT_NE(object.find("\"p50\": 3"), std::string::npos);
  EXPECT_NE(object.find("\"p99\": 5"), std::string::npos);
}

TEST(RenderJsonSnapshotTest, OverflowBucketKeyedAsInf) {
  Histogram h("test/expose/json_inf");
  h.Record(UINT64_MAX);
  const std::string json = RenderJsonSnapshot();
  const size_t hist = json.find("\"test/expose/json_inf\": {");
  ASSERT_NE(hist, std::string::npos);
  EXPECT_NE(json.find("\"+Inf\": 1", hist), std::string::npos);
}

}  // namespace
}  // namespace dmt::obs
