#include "eval/cross_validation.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "gen/agrawal.h"

namespace dmt::eval {
namespace {

TEST(TrainTestSplitTest, PartitionsAllRows) {
  auto split = TrainTestSplit(100, 0.3, 1);
  ASSERT_TRUE(split.ok());
  EXPECT_EQ(split->test.size(), 30u);
  EXPECT_EQ(split->train.size(), 70u);
  std::set<size_t> all(split->train.begin(), split->train.end());
  all.insert(split->test.begin(), split->test.end());
  EXPECT_EQ(all.size(), 100u);
}

TEST(TrainTestSplitTest, DeterministicForSeed) {
  auto a = TrainTestSplit(50, 0.2, 7);
  auto b = TrainTestSplit(50, 0.2, 7);
  auto c = TrainTestSplit(50, 0.2, 8);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(a->test, b->test);
  EXPECT_NE(a->test, c->test);
}

TEST(TrainTestSplitTest, ValidatesInput) {
  EXPECT_FALSE(TrainTestSplit(1, 0.5, 1).ok());
  EXPECT_FALSE(TrainTestSplit(10, 0.0, 1).ok());
  EXPECT_FALSE(TrainTestSplit(10, 1.0, 1).ok());
}

TEST(TrainTestSplitTest, NeitherSideEmptyAtExtremes) {
  auto tiny = TrainTestSplit(10, 0.01, 1);
  ASSERT_TRUE(tiny.ok());
  EXPECT_GE(tiny->test.size(), 1u);
  auto huge = TrainTestSplit(10, 0.99, 1);
  ASSERT_TRUE(huge.ok());
  EXPECT_GE(huge->train.size(), 1u);
}

TEST(StratifiedSplitTest, PreservesClassProportions) {
  // 80/20 class balance must survive the split.
  std::vector<uint32_t> labels;
  for (int i = 0; i < 400; ++i) labels.push_back(0);
  for (int i = 0; i < 100; ++i) labels.push_back(1);
  auto split = StratifiedTrainTestSplit(labels, 0.25, 3);
  ASSERT_TRUE(split.ok());
  size_t test_class1 = 0;
  for (size_t row : split->test) {
    if (labels[row] == 1) ++test_class1;
  }
  EXPECT_EQ(split->test.size(), 125u);
  EXPECT_EQ(test_class1, 25u);
}

TEST(StratifiedKFoldTest, FoldsPartitionRows) {
  std::vector<uint32_t> labels;
  for (int i = 0; i < 100; ++i) labels.push_back(i % 3);
  auto folds = StratifiedKFold(labels, 5, 9);
  ASSERT_TRUE(folds.ok());
  ASSERT_EQ(folds->size(), 5u);
  std::vector<int> seen(100, 0);
  for (const auto& fold : *folds) {
    EXPECT_EQ(fold.train.size() + fold.test.size(), 100u);
    for (size_t row : fold.test) ++seen[row];
    // Train and test are disjoint.
    std::set<size_t> train_set(fold.train.begin(), fold.train.end());
    for (size_t row : fold.test) {
      EXPECT_FALSE(train_set.contains(row));
    }
  }
  for (int count : seen) EXPECT_EQ(count, 1);
}

TEST(StratifiedKFoldTest, FoldsAreClassBalanced) {
  std::vector<uint32_t> labels;
  for (int i = 0; i < 300; ++i) labels.push_back(i < 200 ? 0 : 1);
  auto folds = StratifiedKFold(labels, 5, 2);
  ASSERT_TRUE(folds.ok());
  for (const auto& fold : *folds) {
    size_t class1 = 0;
    for (size_t row : fold.test) {
      if (labels[row] == 1) ++class1;
    }
    double fraction =
        static_cast<double>(class1) / static_cast<double>(fold.test.size());
    EXPECT_NEAR(fraction, 1.0 / 3.0, 0.05);
  }
}

TEST(StratifiedKFoldTest, ValidatesInput) {
  std::vector<uint32_t> labels = {0, 1, 0, 1};
  EXPECT_FALSE(StratifiedKFold(labels, 1, 1).ok());
  EXPECT_FALSE(StratifiedKFold(labels, 5, 1).ok());
}

TEST(MaterializeSplitTest, ProducesMatchingDatasets) {
  gen::AgrawalParams params;
  params.num_records = 200;
  auto data = gen::GenerateAgrawal(params, 1);
  ASSERT_TRUE(data.ok());
  auto split = StratifiedTrainTestSplit(data->labels(), 0.25, 4);
  ASSERT_TRUE(split.ok());
  core::Dataset train, test;
  MaterializeSplit(*data, *split, &train, &test);
  EXPECT_EQ(train.num_rows(), split->train.size());
  EXPECT_EQ(test.num_rows(), split->test.size());
  EXPECT_EQ(train.num_attributes(), data->num_attributes());
  // Row content preserved: check the first test row.
  size_t original_row = split->test[0];
  EXPECT_DOUBLE_EQ(test.Numeric(0, 0), data->Numeric(original_row, 0));
  EXPECT_EQ(test.Label(0), data->Label(original_row));
}

}  // namespace
}  // namespace dmt::eval
