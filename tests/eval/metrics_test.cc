#include "eval/metrics.h"

#include <gtest/gtest.h>

namespace dmt::eval {
namespace {

TEST(ConfusionMatrixTest, CountsCells) {
  std::vector<uint32_t> truth = {0, 0, 1, 1, 1};
  std::vector<uint32_t> predicted = {0, 1, 1, 1, 0};
  auto matrix = ConfusionMatrix::FromPredictions(2, truth, predicted);
  ASSERT_TRUE(matrix.ok());
  EXPECT_EQ(matrix->cell(0, 0), 1u);
  EXPECT_EQ(matrix->cell(0, 1), 1u);
  EXPECT_EQ(matrix->cell(1, 0), 1u);
  EXPECT_EQ(matrix->cell(1, 1), 2u);
  EXPECT_EQ(matrix->total(), 5u);
}

TEST(ConfusionMatrixTest, PerfectPredictions) {
  std::vector<uint32_t> labels = {0, 1, 2, 1, 0};
  auto matrix = ConfusionMatrix::FromPredictions(3, labels, labels);
  ASSERT_TRUE(matrix.ok());
  EXPECT_DOUBLE_EQ(matrix->Accuracy(), 1.0);
  EXPECT_DOUBLE_EQ(matrix->MacroF1(), 1.0);
  EXPECT_DOUBLE_EQ(matrix->MacroPrecision(), 1.0);
  EXPECT_DOUBLE_EQ(matrix->MacroRecall(), 1.0);
}

TEST(ConfusionMatrixTest, KnownPrecisionRecall) {
  // Class 0: TP=3, FP=1, FN=2.
  std::vector<uint32_t> truth = {0, 0, 0, 0, 0, 1, 1, 1};
  std::vector<uint32_t> predicted = {0, 0, 0, 1, 1, 0, 1, 1};
  auto matrix = ConfusionMatrix::FromPredictions(2, truth, predicted);
  ASSERT_TRUE(matrix.ok());
  EXPECT_DOUBLE_EQ(matrix->Precision(0), 3.0 / 4.0);
  EXPECT_DOUBLE_EQ(matrix->Recall(0), 3.0 / 5.0);
  EXPECT_NEAR(matrix->F1(0), 2.0 * 0.75 * 0.6 / (0.75 + 0.6), 1e-12);
  EXPECT_DOUBLE_EQ(matrix->Accuracy(), 5.0 / 8.0);
}

TEST(ConfusionMatrixTest, NeverPredictedClassZeroPrecision) {
  std::vector<uint32_t> truth = {0, 1, 2};
  std::vector<uint32_t> predicted = {0, 0, 0};
  auto matrix = ConfusionMatrix::FromPredictions(3, truth, predicted);
  ASSERT_TRUE(matrix.ok());
  EXPECT_DOUBLE_EQ(matrix->Precision(1), 0.0);
  EXPECT_DOUBLE_EQ(matrix->Recall(1), 0.0);
  EXPECT_DOUBLE_EQ(matrix->F1(1), 0.0);
}

TEST(ConfusionMatrixTest, ValidatesInput) {
  std::vector<uint32_t> truth = {0, 1};
  std::vector<uint32_t> short_pred = {0};
  EXPECT_FALSE(
      ConfusionMatrix::FromPredictions(2, truth, short_pred).ok());
  std::vector<uint32_t> out_of_range = {0, 5};
  EXPECT_FALSE(
      ConfusionMatrix::FromPredictions(2, truth, out_of_range).ok());
  EXPECT_FALSE(ConfusionMatrix::FromPredictions(0, truth, truth).ok());
  std::vector<uint32_t> empty;
  EXPECT_FALSE(ConfusionMatrix::FromPredictions(2, empty, empty).ok());
}

TEST(ConfusionMatrixTest, ToStringContainsCounts) {
  std::vector<uint32_t> truth = {0, 1};
  std::vector<uint32_t> predicted = {0, 1};
  auto matrix = ConfusionMatrix::FromPredictions(2, truth, predicted);
  ASSERT_TRUE(matrix.ok());
  std::string text = matrix->ToString();
  EXPECT_NE(text.find("true\\pred"), std::string::npos);
}

TEST(AccuracyTest, Basics) {
  std::vector<uint32_t> truth = {0, 1, 2, 3};
  std::vector<uint32_t> predicted = {0, 1, 0, 3};
  auto accuracy = Accuracy(truth, predicted);
  ASSERT_TRUE(accuracy.ok());
  EXPECT_DOUBLE_EQ(*accuracy, 0.75);
}

TEST(AccuracyTest, ValidatesInput) {
  std::vector<uint32_t> a = {0};
  std::vector<uint32_t> empty;
  EXPECT_FALSE(Accuracy(a, empty).ok());
  EXPECT_FALSE(Accuracy(empty, empty).ok());
}

}  // namespace
}  // namespace dmt::eval
