#include "eval/clustering_metrics.h"

#include <gtest/gtest.h>

#include "core/rng.h"

namespace dmt::eval {
namespace {

TEST(AriTest, IdenticalPartitionsScoreOne) {
  std::vector<uint32_t> labels = {0, 0, 1, 1, 2, 2};
  auto ari = AdjustedRandIndex(labels, labels);
  ASSERT_TRUE(ari.ok());
  EXPECT_DOUBLE_EQ(*ari, 1.0);
}

TEST(AriTest, PermutedLabelsStillScoreOne) {
  std::vector<uint32_t> truth = {0, 0, 1, 1, 2, 2};
  std::vector<uint32_t> renamed = {7, 7, 3, 3, 9, 9};
  auto ari = AdjustedRandIndex(truth, renamed);
  ASSERT_TRUE(ari.ok());
  EXPECT_DOUBLE_EQ(*ari, 1.0);
}

TEST(AriTest, RandomPartitionNearZero) {
  core::Rng rng(3);
  std::vector<uint32_t> truth, predicted;
  for (int i = 0; i < 3000; ++i) {
    truth.push_back(static_cast<uint32_t>(rng.UniformU64(4)));
    predicted.push_back(static_cast<uint32_t>(rng.UniformU64(4)));
  }
  auto ari = AdjustedRandIndex(truth, predicted);
  ASSERT_TRUE(ari.ok());
  EXPECT_NEAR(*ari, 0.0, 0.02);
}

TEST(AriTest, KnownSmallExample) {
  // Classic worked example: ARI of these partitions is 0.24242...
  std::vector<uint32_t> truth = {0, 0, 0, 1, 1, 1};
  std::vector<uint32_t> predicted = {0, 0, 1, 1, 2, 2};
  auto ari = AdjustedRandIndex(truth, predicted);
  ASSERT_TRUE(ari.ok());
  // Contingency: [[2,1,0],[0,1,2]]; sum cells C2 = 1+1 = 2;
  // rows: 2*C(3,2)=6; cols: C(2,2)*2+C(2,2)=... compute directly:
  // cols sizes 2,2,2 -> 3; expected = 6*3/15 = 1.2; max = 4.5.
  EXPECT_NEAR(*ari, (2.0 - 1.2) / (4.5 - 1.2), 1e-12);
}

TEST(AriTest, ValidatesInput) {
  std::vector<uint32_t> a = {0, 1};
  std::vector<uint32_t> shorter = {0};
  EXPECT_FALSE(AdjustedRandIndex(a, shorter).ok());
  std::vector<uint32_t> empty;
  EXPECT_FALSE(AdjustedRandIndex(empty, empty).ok());
}

TEST(NmiTest, IdenticalPartitionsScoreOne) {
  std::vector<uint32_t> labels = {0, 1, 1, 2, 2, 2};
  auto nmi = NormalizedMutualInformation(labels, labels);
  ASSERT_TRUE(nmi.ok());
  EXPECT_NEAR(*nmi, 1.0, 1e-12);
}

TEST(NmiTest, IndependentPartitionsNearZero) {
  core::Rng rng(7);
  std::vector<uint32_t> truth, predicted;
  for (int i = 0; i < 5000; ++i) {
    truth.push_back(static_cast<uint32_t>(rng.UniformU64(3)));
    predicted.push_back(static_cast<uint32_t>(rng.UniformU64(3)));
  }
  auto nmi = NormalizedMutualInformation(truth, predicted);
  ASSERT_TRUE(nmi.ok());
  EXPECT_LT(*nmi, 0.01);
}

TEST(NmiTest, ConstantPartitionsScoreOne) {
  std::vector<uint32_t> constant = {5, 5, 5};
  auto nmi = NormalizedMutualInformation(constant, constant);
  ASSERT_TRUE(nmi.ok());
  EXPECT_DOUBLE_EQ(*nmi, 1.0);
}

TEST(NmiTest, InRange) {
  std::vector<uint32_t> truth = {0, 0, 1, 1, 2, 2, 0, 1};
  std::vector<uint32_t> predicted = {0, 1, 1, 1, 2, 0, 0, 2};
  auto nmi = NormalizedMutualInformation(truth, predicted);
  ASSERT_TRUE(nmi.ok());
  EXPECT_GE(*nmi, 0.0);
  EXPECT_LE(*nmi, 1.0);
}

TEST(PurityTest, PerfectClusteringScoresOne) {
  std::vector<uint32_t> truth = {0, 0, 1, 1};
  std::vector<uint32_t> predicted = {1, 1, 0, 0};
  auto purity = Purity(truth, predicted);
  ASSERT_TRUE(purity.ok());
  EXPECT_DOUBLE_EQ(*purity, 1.0);
}

TEST(PurityTest, KnownMixedExample) {
  // Cluster 0: classes {0,0,1} -> majority 2; cluster 1: {1,1} -> 2.
  std::vector<uint32_t> truth = {0, 0, 1, 1, 1};
  std::vector<uint32_t> predicted = {0, 0, 0, 1, 1};
  auto purity = Purity(truth, predicted);
  ASSERT_TRUE(purity.ok());
  EXPECT_DOUBLE_EQ(*purity, 4.0 / 5.0);
}

TEST(PurityTest, SingleClusterEqualsLargestClassFraction) {
  std::vector<uint32_t> truth = {0, 0, 0, 1, 2};
  std::vector<uint32_t> predicted = {0, 0, 0, 0, 0};
  auto purity = Purity(truth, predicted);
  ASSERT_TRUE(purity.ok());
  EXPECT_DOUBLE_EQ(*purity, 3.0 / 5.0);
}


TEST(SilhouetteTest, WellSeparatedClustersScoreHigh) {
  core::PointSet points(1);
  for (double x : {0.0, 0.1, 0.2, 10.0, 10.1, 10.2}) {
    points.Add(std::vector<double>{x});
  }
  std::vector<uint32_t> labels = {0, 0, 0, 1, 1, 1};
  auto score = MeanSilhouette(points, labels);
  ASSERT_TRUE(score.ok());
  EXPECT_GT(*score, 0.95);
}

TEST(SilhouetteTest, BadPartitionScoresLow) {
  core::PointSet points(1);
  for (double x : {0.0, 0.1, 0.2, 10.0, 10.1, 10.2}) {
    points.Add(std::vector<double>{x});
  }
  // Split each true blob across both clusters.
  std::vector<uint32_t> mixed = {0, 1, 0, 1, 0, 1};
  auto bad = MeanSilhouette(points, mixed);
  std::vector<uint32_t> good = {0, 0, 0, 1, 1, 1};
  auto ideal = MeanSilhouette(points, good);
  ASSERT_TRUE(bad.ok());
  ASSERT_TRUE(ideal.ok());
  EXPECT_LT(*bad, *ideal);
  EXPECT_LT(*bad, 0.3);
}

TEST(SilhouetteTest, SingletonClustersScoreZero) {
  core::PointSet points(1);
  points.Add(std::vector<double>{0.0});
  points.Add(std::vector<double>{5.0});
  std::vector<uint32_t> labels = {0, 1};
  auto score = MeanSilhouette(points, labels);
  ASSERT_TRUE(score.ok());
  EXPECT_DOUBLE_EQ(*score, 0.0);
}

TEST(SilhouetteTest, ValidatesInput) {
  core::PointSet points(1);
  points.Add(std::vector<double>{0.0});
  points.Add(std::vector<double>{1.0});
  std::vector<uint32_t> one_cluster = {0, 0};
  EXPECT_FALSE(MeanSilhouette(points, one_cluster).ok());
  std::vector<uint32_t> wrong_size = {0};
  EXPECT_FALSE(MeanSilhouette(points, wrong_size).ok());
  core::PointSet empty(1);
  std::vector<uint32_t> none;
  EXPECT_FALSE(MeanSilhouette(empty, none).ok());
}

}  // namespace
}  // namespace dmt::eval
