#include "gen/seqgen.h"

#include <gtest/gtest.h>

namespace dmt::gen {
namespace {

SequenceGenParams SmallParams() {
  SequenceGenParams params;
  params.num_customers = 300;
  params.avg_transactions_per_customer = 6.0;
  params.avg_items_per_transaction = 2.5;
  params.avg_pattern_elements = 3.0;
  params.avg_pattern_itemset_size = 1.5;
  params.num_items = 100;
  params.num_pattern_sequences = 30;
  params.num_pattern_itemsets = 100;
  return params;
}

TEST(SeqGenTest, GeneratesRequestedCustomerCount) {
  auto db = GenerateSequences(SmallParams(), 1);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db->size(), 300u);
}

TEST(SeqGenTest, DeterministicForSeed) {
  auto a = GenerateSequences(SmallParams(), 21);
  auto b = GenerateSequences(SmallParams(), 21);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->size(), b->size());
  for (size_t i = 0; i < a->size(); ++i) {
    EXPECT_EQ(a->sequence(i), b->sequence(i));
  }
}

TEST(SeqGenTest, NoEmptySequencesOrElements) {
  auto db = GenerateSequences(SmallParams(), 2);
  ASSERT_TRUE(db.ok());
  for (size_t i = 0; i < db->size(); ++i) {
    const auto& sequence = db->sequence(i);
    EXPECT_FALSE(sequence.empty());
    for (const auto& element : sequence.elements) {
      EXPECT_FALSE(element.empty());
    }
  }
}

TEST(SeqGenTest, ItemUniverseBounded) {
  auto db = GenerateSequences(SmallParams(), 3);
  ASSERT_TRUE(db.ok());
  EXPECT_LE(db->item_universe(), 100u);
}

TEST(SeqGenTest, AverageElementsNearTarget) {
  SequenceGenParams params = SmallParams();
  params.num_customers = 2000;
  auto db = GenerateSequences(params, 4);
  ASSERT_TRUE(db.ok());
  EXPECT_GT(db->average_elements(), 0.5 * 6.0);
  EXPECT_LT(db->average_elements(), 1.5 * 6.0);
}

TEST(SeqGenTest, ValidatesParameters) {
  SequenceGenParams params = SmallParams();
  params.num_customers = 0;
  EXPECT_FALSE(GenerateSequences(params, 1).ok());
  params = SmallParams();
  params.avg_pattern_elements = 0.0;
  EXPECT_FALSE(GenerateSequences(params, 1).ok());
  params = SmallParams();
  params.num_pattern_sequences = 0;
  EXPECT_FALSE(GenerateSequences(params, 1).ok());
  params = SmallParams();
  params.corruption_mean = 1.5;
  EXPECT_FALSE(GenerateSequences(params, 1).ok());
}

TEST(SeqGenTest, WorkloadNameFormatting) {
  SequenceGenParams params;
  params.avg_transactions_per_customer = 10;
  params.avg_items_per_transaction = 2.5;
  params.avg_pattern_elements = 4;
  params.avg_pattern_itemset_size = 1.25;
  EXPECT_EQ(params.Name(), "C10.T2.5.S4.I1.25");
}

}  // namespace
}  // namespace dmt::gen
