#include "gen/quest.h"

#include <gtest/gtest.h>

namespace dmt::gen {
namespace {

QuestParams SmallParams() {
  QuestParams params;
  params.num_transactions = 500;
  params.avg_transaction_size = 8.0;
  params.avg_pattern_size = 3.0;
  params.num_items = 100;
  params.num_patterns = 50;
  return params;
}

TEST(QuestTest, GeneratesRequestedTransactionCount) {
  auto db = GenerateQuestTransactions(SmallParams(), 1);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db->size(), 500u);
}

TEST(QuestTest, DeterministicForSeed) {
  auto a = GenerateQuestTransactions(SmallParams(), 42);
  auto b = GenerateQuestTransactions(SmallParams(), 42);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->size(), b->size());
  EXPECT_EQ(a->ToBasketText(), b->ToBasketText());
}

TEST(QuestTest, DifferentSeedsDiffer) {
  auto a = GenerateQuestTransactions(SmallParams(), 1);
  auto b = GenerateQuestTransactions(SmallParams(), 2);
  EXPECT_NE(a->ToBasketText(), b->ToBasketText());
}

TEST(QuestTest, AverageTransactionSizeNearTarget) {
  QuestParams params = SmallParams();
  params.num_transactions = 5000;
  auto db = GenerateQuestTransactions(params, 3);
  ASSERT_TRUE(db.ok());
  // Dedup and the fit-or-defer rule push the realised mean off the Poisson
  // mean somewhat; the workload shape only needs the right scale.
  EXPECT_GT(db->average_length(), 0.5 * params.avg_transaction_size);
  EXPECT_LT(db->average_length(), 1.5 * params.avg_transaction_size);
}

TEST(QuestTest, ItemIdsWithinUniverse) {
  auto db = GenerateQuestTransactions(SmallParams(), 4);
  ASSERT_TRUE(db.ok());
  EXPECT_LE(db->item_universe(), 100u);
}

TEST(QuestTest, NoEmptyTransactions) {
  auto db = GenerateQuestTransactions(SmallParams(), 5);
  ASSERT_TRUE(db.ok());
  for (size_t t = 0; t < db->size(); ++t) {
    EXPECT_FALSE(db->transaction(t).empty());
  }
}

TEST(QuestTest, PlantsCorrelatedPatterns) {
  // With patterns planted, some pair of items must co-occur far more often
  // than independence predicts.
  QuestParams params = SmallParams();
  params.num_transactions = 2000;
  auto db = GenerateQuestTransactions(params, 6);
  ASSERT_TRUE(db.ok());
  // Count pairwise co-occurrences of the two most frequent items.
  auto supports = db->ItemSupports();
  size_t best = 0, second = 0;
  for (size_t i = 1; i < supports.size(); ++i) {
    if (supports[i] > supports[best]) {
      second = best;
      best = i;
    } else if (supports[i] > supports[second]) {
      second = i;
    }
  }
  EXPECT_GT(supports[best], 0u);
  EXPECT_GT(supports[second], 0u);
}

TEST(QuestTest, ValidatesParameters) {
  QuestParams params = SmallParams();
  params.num_transactions = 0;
  EXPECT_FALSE(GenerateQuestTransactions(params, 1).ok());
  params = SmallParams();
  params.correlation = 1.5;
  EXPECT_FALSE(GenerateQuestTransactions(params, 1).ok());
  params = SmallParams();
  params.avg_pattern_size = 0.0;
  EXPECT_FALSE(GenerateQuestTransactions(params, 1).ok());
  params = SmallParams();
  params.corruption_mean = -0.1;
  EXPECT_FALSE(GenerateQuestTransactions(params, 1).ok());
}

TEST(QuestTest, WorkloadNameFormatting) {
  QuestParams params;
  params.avg_transaction_size = 10;
  params.avg_pattern_size = 4;
  params.num_transactions = 100000;
  EXPECT_EQ(params.Name(), "T10.I4.D100K");
  params.num_transactions = 2000000;
  EXPECT_EQ(params.Name(), "T10.I4.D2M");
  params.num_transactions = 123;
  EXPECT_EQ(params.Name(), "T10.I4.D123");
  params.avg_transaction_size = 2.5;
  EXPECT_EQ(params.Name(), "T2.5.I4.D123");
}

}  // namespace
}  // namespace dmt::gen
