#include "gen/agrawal.h"

#include <gtest/gtest.h>

namespace dmt::gen {
namespace {

using core::AttributeType;

TEST(AgrawalTest, GeneratesRequestedShape) {
  AgrawalParams params;
  params.function = 1;
  params.num_records = 1000;
  auto ds = GenerateAgrawal(params, 1);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->num_rows(), 1000u);
  EXPECT_EQ(ds->num_attributes(), 9u);
  EXPECT_EQ(ds->num_classes(), 2u);
  EXPECT_EQ(ds->class_name(0), "groupA");
}

TEST(AgrawalTest, DeterministicForSeed) {
  AgrawalParams params;
  params.num_records = 200;
  auto a = GenerateAgrawal(params, 7);
  auto b = GenerateAgrawal(params, 7);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (size_t i = 0; i < a->num_rows(); ++i) {
    EXPECT_EQ(a->Label(i), b->Label(i));
    EXPECT_DOUBLE_EQ(a->Numeric(i, 0), b->Numeric(i, 0));
  }
}

TEST(AgrawalTest, AttributeRangesRespected) {
  AgrawalParams params;
  params.num_records = 2000;
  auto ds = GenerateAgrawal(params, 3);
  ASSERT_TRUE(ds.ok());
  for (size_t i = 0; i < ds->num_rows(); ++i) {
    double salary = ds->Numeric(i, 0);
    double commission = ds->Numeric(i, 1);
    double age = ds->Numeric(i, 2);
    double loan = ds->Numeric(i, 8);
    EXPECT_GE(salary, 20000.0);
    EXPECT_LE(salary, 150000.0);
    EXPECT_GE(age, 20.0);
    EXPECT_LE(age, 80.0);
    EXPECT_GE(loan, 0.0);
    EXPECT_LE(loan, 500000.0);
    if (salary >= 75000.0) {
      EXPECT_DOUBLE_EQ(commission, 0.0);
    } else {
      EXPECT_GE(commission, 10000.0);
      EXPECT_LE(commission, 75000.0);
    }
  }
}

TEST(AgrawalTest, Function1MatchesPredicateExactly) {
  AgrawalParams params;
  params.function = 1;
  params.num_records = 3000;
  auto ds = GenerateAgrawal(params, 11);
  ASSERT_TRUE(ds.ok());
  for (size_t i = 0; i < ds->num_rows(); ++i) {
    double age = ds->Numeric(i, 2);
    bool group_a = age < 40.0 || age >= 60.0;
    EXPECT_EQ(ds->Label(i), group_a ? 0u : 1u);
  }
}

TEST(AgrawalTest, EveryFunctionProducesBothClasses) {
  for (int function = 1; function <= 10; ++function) {
    AgrawalParams params;
    params.function = function;
    params.num_records = 5000;
    auto ds = GenerateAgrawal(params, 100 + function);
    ASSERT_TRUE(ds.ok());
    auto counts = ds->ClassCounts();
    EXPECT_GT(counts[0], 50u) << "function " << function;
    // F10's published predicate is heavily skewed toward group A (group B
    // needs low income, high education, and no home equity at once); only
    // require that the minority class exists there.
    size_t minority_floor = function == 10 ? 1 : 50;
    EXPECT_GE(counts[1], minority_floor) << "function " << function;
  }
}

TEST(AgrawalTest, LabelNoiseFlipsRoughlyTheRequestedFraction) {
  AgrawalParams clean;
  clean.function = 1;
  clean.num_records = 5000;
  AgrawalParams noisy = clean;
  noisy.label_noise = 0.2;
  auto a = GenerateAgrawal(clean, 13);
  auto b = GenerateAgrawal(noisy, 13);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  size_t flipped = 0;
  for (size_t i = 0; i < a->num_rows(); ++i) {
    // The draw order differs because noisy runs consume extra randomness;
    // instead, verify against the deterministic predicate on age.
    double age = b->Numeric(i, 2);
    bool group_a = age < 40.0 || age >= 60.0;
    if (b->Label(i) != (group_a ? 0u : 1u)) ++flipped;
  }
  double rate = static_cast<double>(flipped) / 5000.0;
  EXPECT_NEAR(rate, 0.2, 0.03);
}

TEST(AgrawalTest, PerturbationKeepsRangesAndChangesValues) {
  AgrawalParams params;
  params.num_records = 1000;
  params.perturbation = 0.1;
  auto ds = GenerateAgrawal(params, 17);
  ASSERT_TRUE(ds.ok());
  for (size_t i = 0; i < ds->num_rows(); ++i) {
    EXPECT_GE(ds->Numeric(i, 0), 20000.0);
    EXPECT_LE(ds->Numeric(i, 0), 150000.0);
    EXPECT_GE(ds->Numeric(i, 2), 20.0);
    EXPECT_LE(ds->Numeric(i, 2), 80.0);
  }
}

TEST(AgrawalTest, ValidatesParameters) {
  AgrawalParams params;
  params.function = 0;
  EXPECT_FALSE(GenerateAgrawal(params, 1).ok());
  params.function = 11;
  EXPECT_FALSE(GenerateAgrawal(params, 1).ok());
  params.function = 1;
  params.num_records = 0;
  EXPECT_FALSE(GenerateAgrawal(params, 1).ok());
  params.num_records = 10;
  params.perturbation = 2.0;
  EXPECT_FALSE(GenerateAgrawal(params, 1).ok());
  params.perturbation = 0.0;
  params.label_noise = -0.5;
  EXPECT_FALSE(GenerateAgrawal(params, 1).ok());
}

TEST(AgrawalTest, CategoricalAttributesHaveExpectedCardinality) {
  AgrawalParams params;
  params.num_records = 100;
  auto ds = GenerateAgrawal(params, 19);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->attribute(3).name, "elevel");
  EXPECT_EQ(ds->attribute(3).num_categories(), 5u);
  EXPECT_EQ(ds->attribute(4).num_categories(), 20u);
  EXPECT_EQ(ds->attribute(5).num_categories(), 9u);
  EXPECT_EQ(ds->attribute(3).type, AttributeType::kCategorical);
}

}  // namespace
}  // namespace dmt::gen
