#include "gen/mixture.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/distance.h"

namespace dmt::gen {
namespace {

TEST(MixtureTest, GeneratesExpectedCounts) {
  GaussianMixtureParams params;
  params.num_clusters = 4;
  params.points_per_cluster = 50;
  auto data = GenerateGaussianMixture(params, 1);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->points.size(), 200u);
  EXPECT_EQ(data->labels.size(), 200u);
  EXPECT_EQ(data->true_centers.size(), 4u);
}

TEST(MixtureTest, DeterministicForSeed) {
  GaussianMixtureParams params;
  auto a = GenerateGaussianMixture(params, 5);
  auto b = GenerateGaussianMixture(params, 5);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->points.data(), b->points.data());
  EXPECT_EQ(a->labels, b->labels);
}

TEST(MixtureTest, PointsClusterAroundTheirCenters) {
  GaussianMixtureParams params;
  params.num_clusters = 3;
  params.points_per_cluster = 200;
  params.cluster_stddev = 0.5;
  params.spread = 100.0;  // well separated
  auto data = GenerateGaussianMixture(params, 7);
  ASSERT_TRUE(data.ok());
  for (size_t i = 0; i < data->points.size(); ++i) {
    uint32_t label = data->labels[i];
    double distance = core::EuclideanDistance(
        data->points.point(i), data->true_centers.point(label));
    // 2-d gaussian with sigma 0.5: distance beyond 5 sigma is negligible.
    EXPECT_LT(distance, 5.0);
  }
}

TEST(MixtureTest, GridPlacementFormsGrid) {
  auto data = GenerateBirchGrid(9, 10, 10.0, 0.5, 3);
  ASSERT_TRUE(data.ok());
  ASSERT_EQ(data->true_centers.size(), 9u);
  // Centers must lie on the 3x3 grid {0,10,20}^2.
  for (size_t c = 0; c < 9; ++c) {
    auto center = data->true_centers.point(c);
    EXPECT_DOUBLE_EQ(std::fmod(center[0], 10.0), 0.0);
    EXPECT_DOUBLE_EQ(std::fmod(center[1], 10.0), 0.0);
  }
}

TEST(MixtureTest, NoiseLabelledAsNoise) {
  GaussianMixtureParams params;
  params.num_clusters = 2;
  params.points_per_cluster = 100;
  params.noise_fraction = 0.25;
  auto data = GenerateGaussianMixture(params, 11);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->points.size(), 250u);
  size_t noise = 0;
  for (uint32_t label : data->labels) {
    if (label == kNoiseLabel) ++noise;
  }
  EXPECT_EQ(noise, 50u);
  // All noise labels trail the clustered points.
  for (size_t i = 0; i < 200; ++i) EXPECT_NE(data->labels[i], kNoiseLabel);
}

TEST(MixtureTest, HighDimensionalGeneration) {
  GaussianMixtureParams params;
  params.dim = 16;
  params.num_clusters = 3;
  params.points_per_cluster = 20;
  auto data = GenerateGaussianMixture(params, 13);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->points.dim(), 16u);
}

TEST(MixtureTest, ValidatesParameters) {
  GaussianMixtureParams params;
  params.num_clusters = 0;
  EXPECT_FALSE(GenerateGaussianMixture(params, 1).ok());
  params = GaussianMixtureParams{};
  params.dim = 3;
  params.placement = CenterPlacement::kGrid;
  EXPECT_FALSE(GenerateGaussianMixture(params, 1).ok());
  params = GaussianMixtureParams{};
  params.spread = 0.0;
  EXPECT_FALSE(GenerateGaussianMixture(params, 1).ok());
  params = GaussianMixtureParams{};
  params.noise_fraction = -0.1;
  EXPECT_FALSE(GenerateGaussianMixture(params, 1).ok());
}

}  // namespace
}  // namespace dmt::gen
