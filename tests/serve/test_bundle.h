// Shared fixture pieces for the serving tests: a small fully-populated
// in-process ModelBundle (tree + train + kmeans + rules, no disk I/O) and
// request builders that produce schema-valid frames against it.
#ifndef DMT_TESTS_SERVE_TEST_BUNDLE_H_
#define DMT_TESTS_SERVE_TEST_BUNDLE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "assoc/apriori.h"
#include "assoc/rules.h"
#include "cluster/kmeans.h"
#include "core/check.h"
#include "core/dataset.h"
#include "gen/agrawal.h"
#include "gen/mixture.h"
#include "gen/quest.h"
#include "serve/model_bundle.h"
#include "serve/protocol.h"
#include "tree/builder.h"

namespace dmt::serve::testutil {

/// Small deterministic bundle with every artifact present: an Agrawal
/// train set + CART tree, k-means centers over a 2-D BIRCH grid, and
/// Apriori rules over a small Quest database.
inline std::shared_ptr<const ModelBundle> MakeTestBundle() {
  gen::AgrawalParams agrawal;
  agrawal.function = 2;
  agrawal.num_records = 200;
  auto train = gen::GenerateAgrawal(agrawal, /*seed=*/1993);
  DMT_CHECK(train.ok());
  auto tree = tree::BuildCart(train.value(), {});
  DMT_CHECK(tree.ok());

  auto grid = gen::GenerateBirchGrid(/*num_clusters=*/4,
                                     /*points_per_cluster=*/30,
                                     /*spacing=*/10.0, /*stddev=*/0.8,
                                     /*seed=*/1996);
  DMT_CHECK(grid.ok());
  cluster::KMeansOptions kopts;
  kopts.k = 4;
  kopts.seed = 7;
  auto kmeans = cluster::KMeans(grid.value().points, kopts);
  DMT_CHECK(kmeans.ok());

  gen::QuestParams quest;
  quest.num_transactions = 300;
  quest.num_items = 60;
  quest.num_patterns = 20;
  quest.avg_transaction_size = 6.0;
  quest.avg_pattern_size = 3.0;
  auto db = gen::GenerateQuestTransactions(quest, /*seed=*/1996);
  DMT_CHECK(db.ok());
  assoc::MiningParams mining;
  mining.min_support = 0.05;
  auto mined = assoc::MineApriori(db.value(), mining);
  DMT_CHECK(mined.ok());
  assoc::RuleParams rule_params;
  rule_params.min_confidence = 0.4;
  auto rules = assoc::GenerateRules(mined.value(), db.value().size(),
                                    rule_params);
  DMT_CHECK(rules.ok());
  DMT_CHECK(!rules.value().empty());

  auto bundle = ModelBundle::FromParts(
      std::move(tree).value(), std::move(train).value(),
      std::move(kmeans).value(), std::move(rules).value());
  DMT_CHECK(bundle.ok());
  return bundle.value();
}

/// One schema-valid feature vector: the given training row's values
/// (categorical codes as doubles), so it passes every validation check.
inline std::vector<double> RecordFrom(const core::Dataset& train,
                                      size_t row) {
  std::vector<double> values;
  for (size_t a = 0; a < train.num_attributes(); ++a) {
    if (train.attribute(a).type == core::AttributeType::kNumeric) {
      values.push_back(train.Numeric(row, a));
    } else {
      values.push_back(static_cast<double>(train.Categorical(row, a)));
    }
  }
  return values;
}

inline Request MakeClassifyRequest(uint64_t id, ClassifyModel model,
                                   const core::Dataset& train,
                                   std::vector<size_t> rows) {
  Request request;
  request.id = id;
  request.type = RequestType::kClassify;
  request.model = model;
  request.count = static_cast<uint32_t>(rows.size());
  request.dim = static_cast<uint32_t>(train.num_attributes());
  for (size_t row : rows) {
    std::vector<double> values = RecordFrom(train, row);
    request.values.insert(request.values.end(), values.begin(),
                          values.end());
  }
  return request;
}

inline Request MakeClusterRequest(uint64_t id,
                                  std::vector<double> points_row_major,
                                  uint32_t dim) {
  Request request;
  request.id = id;
  request.type = RequestType::kAssignCluster;
  request.dim = dim;
  request.count =
      static_cast<uint32_t>(points_row_major.size() / dim);
  request.values = std::move(points_row_major);
  return request;
}

inline Request MakeRecommendRequest(
    uint64_t id, uint32_t top_k,
    std::vector<std::vector<uint32_t>> baskets) {
  Request request;
  request.id = id;
  request.type = RequestType::kRecommend;
  request.top_k = top_k;
  request.count = static_cast<uint32_t>(baskets.size());
  request.baskets = std::move(baskets);
  return request;
}

}  // namespace dmt::serve::testutil

#endif  // DMT_TESTS_SERVE_TEST_BUNDLE_H_
