// The serving determinism contract, enforced: for a fixed frame
// sequence, HandleFrames() must produce bit-identical response bytes at
// every batch_size x num_threads x cache combination, and identical
// serve/* counter totals within a cache setting — the only permitted
// difference is the batch-shape counters (serve/batches,
// serve/batch_bucket_*), which describe the batching itself. Two waves
// of traffic with repeated baskets make the second wave hit the cache,
// so the cached fast path is covered by the same bit-identity check
// (and once more with verify_cache_hits recomputing every hit).
#include <cstddef>
#include <cstdint>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "gtest/gtest.h"
#include "obs/metrics.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "test_bundle.h"

namespace dmt::serve {
namespace {

using Frames = std::vector<std::vector<std::byte>>;

/// Two waves of mixed traffic (no stats requests — their JSON embeds
/// live counter values, which legitimately vary with batch shape).
/// Wave 2 repeats wave 1's baskets so cache-enabled configs hit.
struct Workload {
  Frames wave1;
  Frames wave2;
  size_t total_baskets = 0;
};

Workload MakeWorkload(const ModelBundle& bundle) {
  const core::Dataset& train = bundle.train();
  Workload load;
  uint64_t id = 1;

  auto add = [&](Frames* wave, const Request& request) {
    wave->push_back(EncodeRequestFrame(request));
  };

  const std::vector<std::vector<uint32_t>> baskets = {
      {2, 5, 9}, {1, 3}, {7, 2, 2, 11}, {4}, {9, 5, 2}};

  for (int round = 0; round < 3; ++round) {
    add(&load.wave1,
        testutil::MakeClassifyRequest(id++, ClassifyModel::kTree, train,
                                      {0, 1, 2}));
    add(&load.wave1,
        testutil::MakeClassifyRequest(id++, ClassifyModel::kKnn, train,
                                      {3, 4}));
    add(&load.wave1,
        testutil::MakeClassifyRequest(id++, ClassifyModel::kNaiveBayes,
                                      train, {5, 6, 7, 8}));
    add(&load.wave1,
        testutil::MakeClusterRequest(
            id++, {0.0, 0.0, 10.0, 10.0, -3.0, 7.5, 20.0, 0.5}, 2));
    add(&load.wave1,
        testutil::MakeRecommendRequest(
            id++, 4,
            {baskets[round % baskets.size()],
             baskets[(round + 1) % baskets.size()]}));
    load.total_baskets += 2;
  }
  // A malformed frame and a validation failure: their error responses
  // must be equally deterministic.
  load.wave1.push_back(std::vector<std::byte>(13, std::byte{0x3C}));
  Request bad_dim;
  bad_dim.id = id++;
  bad_dim.type = RequestType::kClassify;
  bad_dim.model = ClassifyModel::kTree;
  bad_dim.count = 1;
  bad_dim.dim = 2;
  bad_dim.values = {1.0, 2.0};
  add(&load.wave1, bad_dim);

  // Wave 2: every basket repeats a wave-1 basket => pure cache hits
  // when the cache is on, plus fresh classify/cluster traffic.
  for (int round = 0; round < 2; ++round) {
    add(&load.wave2,
        testutil::MakeRecommendRequest(
            id++, 4,
            {baskets[round % baskets.size()],
             baskets[(round + 2) % baskets.size()]}));
    load.total_baskets += 2;
    add(&load.wave2,
        testutil::MakeClassifyRequest(id++, ClassifyModel::kTree, train,
                                      {9, 10}));
    add(&load.wave2,
        testutil::MakeClusterRequest(id++, {5.0, 5.0, 0.25, -1.0}, 2));
  }
  return load;
}

struct RunResult {
  Frames responses;  // wave 1 then wave 2, in request order
  /// serve/* counter totals, minus the batch-shape counters.
  std::vector<std::pair<std::string, uint64_t>> counters;
  /// Work-shape histograms (serve/hist/*) as (name, count, sum, buckets):
  /// fully deterministic, so the whole tuple must be bit-identical.
  std::vector<std::tuple<std::string, uint64_t, uint64_t,
                         std::vector<uint64_t>>>
      work_histograms;
  /// Wall-time histograms (serve/latency/*) as (name, count): the sample
  /// values vary run to run, but how many samples land is deterministic.
  /// eval_us is kept separate — it samples once per evaluated batch, so
  /// its count is a batch-shape quantity (like serve/batches).
  std::vector<std::pair<std::string, uint64_t>> latency_counts;
  uint64_t eval_batches = 0;
  uint64_t Counter(const std::string& name) const {
    for (const auto& [key, value] : counters) {
      if (key == name) return value;
    }
    return 0;
  }
};

RunResult RunConfig(std::shared_ptr<const ModelBundle> bundle,
                    const Workload& load, uint32_t batch_size,
                    size_t num_threads, size_t cache_capacity,
                    bool verify_cache_hits = false,
                    bool latency_telemetry = true) {
  obs::Registry::Global().Reset();
  ServeOptions options;
  options.batch_size = batch_size;
  options.num_threads = num_threads;
  options.cache_capacity = cache_capacity;
  options.verify_cache_hits = verify_cache_hits;
  options.latency_telemetry = latency_telemetry;
  Server server(std::move(bundle), options);

  RunResult result;
  for (auto& frame : server.HandleFrames(load.wave1)) {
    result.responses.push_back(std::move(frame));
  }
  for (auto& frame : server.HandleFrames(load.wave2)) {
    result.responses.push_back(std::move(frame));
  }
  for (const auto& [name, value] :
       obs::Registry::Global().CounterSnapshot()) {
    if (name.rfind("serve/", 0) != 0) continue;
    if (name == "serve/batches") continue;
    if (name.rfind("serve/batch_bucket_", 0) == 0) continue;
    result.counters.emplace_back(name, value);
  }
  for (const obs::HistogramData& hist :
       obs::Registry::Global().HistogramSnapshot()) {
    if (hist.name.rfind("serve/hist/", 0) == 0) {
      result.work_histograms.emplace_back(hist.name, hist.count, hist.sum,
                                          hist.buckets);
    } else if (hist.name == "serve/latency/eval_us") {
      result.eval_batches = hist.count;
    } else if (hist.name.rfind("serve/latency/", 0) == 0) {
      result.latency_counts.emplace_back(hist.name, hist.count);
    }
  }
  return result;
}

std::string ConfigName(uint32_t batch_size, size_t threads, size_t cache) {
  return "batch_size=" + std::to_string(batch_size) +
         " threads=" + std::to_string(threads) +
         " cache=" + std::to_string(cache);
}

TEST(ServingDiffTest, BitIdenticalAcrossBatchSizeThreadsAndCache) {
  auto bundle = testutil::MakeTestBundle();
  Workload load = MakeWorkload(*bundle);

  const RunResult baseline_off =
      RunConfig(bundle, load, /*batch_size=*/1, /*threads=*/0,
                /*cache=*/0);
  const RunResult baseline_on =
      RunConfig(bundle, load, /*batch_size=*/1, /*threads=*/0,
                /*cache=*/64);

  // The cache changes counters but never a single response byte.
  ASSERT_EQ(baseline_on.responses.size(), baseline_off.responses.size());
  for (size_t i = 0; i < baseline_off.responses.size(); ++i) {
    EXPECT_EQ(baseline_on.responses[i], baseline_off.responses[i])
        << "cache on/off response divergence at request " << i;
  }

  for (uint32_t batch_size : {1u, 8u, 64u}) {
    for (size_t threads : {size_t{0}, size_t{2}, size_t{7}}) {
      for (size_t cache : {size_t{0}, size_t{64}}) {
        SCOPED_TRACE(ConfigName(batch_size, threads, cache));
        RunResult run = RunConfig(bundle, load, batch_size, threads, cache);
        const RunResult& baseline =
            cache == 0 ? baseline_off : baseline_on;
        ASSERT_EQ(run.responses.size(), baseline.responses.size());
        for (size_t i = 0; i < run.responses.size(); ++i) {
          ASSERT_EQ(run.responses[i], baseline.responses[i])
              << "response divergence at request " << i;
        }
        // Counter-snapshot equality: every serve/* total except the
        // batch-shape counters matches the batch_size=1 serial run.
        EXPECT_EQ(run.counters, baseline.counters);
      }
    }
  }
}

TEST(ServingDiffTest, HistogramsBitIdenticalAcrossThreadsAndBatches) {
  auto bundle = testutil::MakeTestBundle();
  Workload load = MakeWorkload(*bundle);

  const RunResult baseline_off =
      RunConfig(bundle, load, /*batch_size=*/1, /*threads=*/0, /*cache=*/0);
  const RunResult baseline_on =
      RunConfig(bundle, load, /*batch_size=*/1, /*threads=*/0,
                /*cache=*/64);

  // The workload actually exercises both work-shape histograms.
  ASSERT_EQ(baseline_off.work_histograms.size(), 2u);
  EXPECT_EQ(std::get<0>(baseline_off.work_histograms[0]),
            "serve/hist/basket_items");
  EXPECT_EQ(std::get<0>(baseline_off.work_histograms[1]),
            "serve/hist/rules_scanned");
  EXPECT_GT(std::get<1>(baseline_off.work_histograms[0]), 0u);
  EXPECT_GT(std::get<1>(baseline_off.work_histograms[1]), 0u);

  for (uint32_t batch_size : {1u, 8u, 64u}) {
    uint64_t eval_batches_at_this_size = 0;
    for (size_t threads : {size_t{0}, size_t{1}, size_t{2}, size_t{7}}) {
      for (size_t cache : {size_t{0}, size_t{64}}) {
        SCOPED_TRACE(ConfigName(batch_size, threads, cache));
        RunResult run = RunConfig(bundle, load, batch_size, threads, cache);
        const RunResult& baseline =
            cache == 0 ? baseline_off : baseline_on;
        // Work-shape histograms: full bucket arrays and sums match the
        // serial batch_size=1 run bit for bit.
        EXPECT_EQ(run.work_histograms, baseline.work_histograms);
        // Latency histograms: values are wall time, but sample counts
        // are a pure function of the workload.
        EXPECT_EQ(run.latency_counts, baseline.latency_counts);
        // eval_us samples once per batch, so its count varies with
        // batch_size — but never with thread count or cache setting.
        if (eval_batches_at_this_size == 0) {
          eval_batches_at_this_size = run.eval_batches;
          EXPECT_GT(run.eval_batches, 0u);
        } else {
          EXPECT_EQ(run.eval_batches, eval_batches_at_this_size);
        }
      }
    }
  }
}

TEST(ServingDiffTest, TelemetryOffIsByteAndWorkIdentical) {
  auto bundle = testutil::MakeTestBundle();
  Workload load = MakeWorkload(*bundle);

  const RunResult on =
      RunConfig(bundle, load, /*batch_size=*/8, /*threads=*/2, /*cache=*/64);
  const RunResult off =
      RunConfig(bundle, load, /*batch_size=*/8, /*threads=*/2, /*cache=*/64,
                /*verify_cache_hits=*/false, /*latency_telemetry=*/false);

  // Telemetry must never change a response byte or a work counter.
  ASSERT_EQ(off.responses.size(), on.responses.size());
  for (size_t i = 0; i < off.responses.size(); ++i) {
    EXPECT_EQ(off.responses[i], on.responses[i])
        << "telemetry on/off response divergence at request " << i;
  }
  EXPECT_EQ(off.counters, on.counters);
  // Work-shape histograms record regardless of the telemetry switch.
  EXPECT_EQ(off.work_histograms, on.work_histograms);
  // Latency histograms: populated with telemetry on, silent when off.
  uint64_t on_samples = 0;
  uint64_t off_samples = 0;
  for (const auto& [name, count] : on.latency_counts) on_samples += count;
  for (const auto& [name, count] : off.latency_counts) {
    off_samples += count;
  }
  EXPECT_GT(on_samples, 0u);
  EXPECT_EQ(off_samples, 0u);
}

TEST(ServingDiffTest, CacheCountersObeyTheirInvariants) {
  auto bundle = testutil::MakeTestBundle();
  Workload load = MakeWorkload(*bundle);

  const RunResult off =
      RunConfig(bundle, load, /*batch_size=*/8, /*threads=*/0, /*cache=*/0);
  const RunResult on = RunConfig(bundle, load, /*batch_size=*/8,
                                 /*threads=*/0, /*cache=*/64);

  // Cache off: every basket is scored, nothing is looked up.
  EXPECT_EQ(off.Counter("serve/baskets_scored"), load.total_baskets);
  EXPECT_EQ(off.Counter("serve/cache_lookups"), 0u);

  // Cache on: lookups partition into hits and misses, every miss is
  // scored and inserted, and wave 2's repeated baskets actually hit.
  const uint64_t lookups = on.Counter("serve/cache_lookups");
  const uint64_t hits = on.Counter("serve/cache_hits");
  const uint64_t misses = on.Counter("serve/cache_misses");
  EXPECT_EQ(lookups, load.total_baskets);
  EXPECT_EQ(lookups, hits + misses);
  EXPECT_GT(hits, 0u);
  EXPECT_EQ(on.Counter("serve/baskets_scored"), misses);
  EXPECT_EQ(on.Counter("serve/cache_insertions"), misses);
  // Work that does not touch the cache is cache-invariant.
  EXPECT_EQ(on.Counter("serve/records_classified"),
            off.Counter("serve/records_classified"));
  EXPECT_EQ(on.Counter("serve/points_assigned"),
            off.Counter("serve/points_assigned"));
}

TEST(ServingDiffTest, VerifiedCacheHitsStayBitIdentical) {
  auto bundle = testutil::MakeTestBundle();
  Workload load = MakeWorkload(*bundle);
  const RunResult baseline =
      RunConfig(bundle, load, /*batch_size=*/1, /*threads=*/0, /*cache=*/0);
  // verify_cache_hits recomputes every hit and DMT_CHECKs byte equality
  // inside the server; surviving the run plus this external comparison
  // is the "asserted, not assumed" cache contract.
  const RunResult verified =
      RunConfig(bundle, load, /*batch_size=*/8, /*threads=*/2,
                /*cache=*/64, /*verify_cache_hits=*/true);
  ASSERT_EQ(verified.responses.size(), baseline.responses.size());
  for (size_t i = 0; i < verified.responses.size(); ++i) {
    EXPECT_EQ(verified.responses[i], baseline.responses[i]);
  }
}

TEST(ServingDiffTest, SingleFrameMatchesBatchedPath) {
  auto bundle = testutil::MakeTestBundle();
  Workload load = MakeWorkload(*bundle);
  ServeOptions options;
  Server server(bundle, options);
  Frames one_by_one;
  for (const auto& frame : load.wave1) {
    one_by_one.push_back(server.HandleFrame(frame));
  }
  const RunResult batched =
      RunConfig(bundle, load, /*batch_size=*/64, /*threads=*/2, /*cache=*/0);
  for (size_t i = 0; i < one_by_one.size(); ++i) {
    EXPECT_EQ(one_by_one[i], batched.responses[i]) << "request " << i;
  }
}

}  // namespace
}  // namespace dmt::serve
