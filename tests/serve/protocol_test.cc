// Wire-protocol robustness battery in the spirit of
// tests/io/corruption_test.cc: round-trips for every request/response
// shape, then systematic corruption — every truncation length, every
// magic byte flipped, lying declared lengths, unknown types, cap
// violations, trailing garbage — each of which must produce a
// descriptive Status (never a crash), and the Server / stream / queue
// layers must turn them into error responses while staying alive.
#include "serve/protocol.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cstddef>
#include <cstring>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "serve/batch_queue.h"
#include "serve/daemon.h"
#include "serve/lru_cache.h"
#include "serve/server.h"
#include "test_bundle.h"

namespace dmt::serve {
namespace {

std::vector<std::byte> Truncate(const std::vector<std::byte>& frame,
                                size_t length) {
  return std::vector<std::byte>(frame.begin(), frame.begin() + length);
}

// ---------------------------------------------------------------- codec

TEST(ServeProtocolTest, ClassifyRequestRoundTrip) {
  Request request;
  request.id = 42;
  request.type = RequestType::kClassify;
  request.model = ClassifyModel::kKnn;
  request.count = 2;
  request.dim = 3;
  request.values = {1.0, -2.5, 3.25, 0.0, 7.5, -0.125};
  auto decoded = DecodeRequestFrame(EncodeRequestFrame(request));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value().id, 42u);
  EXPECT_EQ(decoded.value().type, RequestType::kClassify);
  EXPECT_EQ(decoded.value().model, ClassifyModel::kKnn);
  EXPECT_EQ(decoded.value().count, 2u);
  EXPECT_EQ(decoded.value().dim, 3u);
  EXPECT_EQ(decoded.value().values, request.values);
}

TEST(ServeProtocolTest, ClusterRequestRoundTrip) {
  Request request;
  request.id = 7;
  request.type = RequestType::kAssignCluster;
  request.count = 2;
  request.dim = 2;
  request.values = {0.5, 1.5, -3.0, 4.0};
  auto decoded = DecodeRequestFrame(EncodeRequestFrame(request));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value().type, RequestType::kAssignCluster);
  EXPECT_EQ(decoded.value().values, request.values);
}

TEST(ServeProtocolTest, RecommendRequestRoundTrip) {
  Request request;
  request.id = 9;
  request.type = RequestType::kRecommend;
  request.top_k = 5;
  request.count = 2;
  request.baskets = {{3, 1, 4}, {}};
  auto decoded = DecodeRequestFrame(EncodeRequestFrame(request));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value().top_k, 5u);
  EXPECT_EQ(decoded.value().baskets, request.baskets);
}

TEST(ServeProtocolTest, StatsRequestRoundTrip) {
  Request request;
  request.id = 11;
  request.type = RequestType::kStats;
  auto decoded = DecodeRequestFrame(EncodeRequestFrame(request));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value().id, 11u);
  EXPECT_EQ(decoded.value().type, RequestType::kStats);
}

TEST(ServeProtocolTest, ResponseRoundTrips) {
  Response classify;
  classify.id = 1;
  classify.type = RequestType::kClassify;
  classify.labels = {0, 2, 1};
  auto c = DecodeResponseFrame(EncodeResponseFrame(classify));
  ASSERT_TRUE(c.ok()) << c.status().ToString();
  EXPECT_EQ(c.value().labels, classify.labels);

  Response cluster;
  cluster.id = 2;
  cluster.type = RequestType::kAssignCluster;
  cluster.clusters = {3, 0};
  cluster.cluster_dist_sq = {1.25, 0.0};
  auto a = DecodeResponseFrame(EncodeResponseFrame(cluster));
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  EXPECT_EQ(a.value().clusters, cluster.clusters);
  EXPECT_EQ(a.value().cluster_dist_sq, cluster.cluster_dist_sq);

  Response recommend;
  recommend.id = 3;
  recommend.type = RequestType::kRecommend;
  recommend.recommendations = {
      {RuleHit{5, 0.75, 1.5, {8, 9}}, RuleHit{6, 0.5, 1.0, {}}}, {}};
  auto r = DecodeResponseFrame(EncodeResponseFrame(recommend));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().recommendations, recommend.recommendations);

  Response stats;
  stats.id = 4;
  stats.type = RequestType::kStats;
  stats.stats_json = "{\"x\":1}";
  auto s = DecodeResponseFrame(EncodeResponseFrame(stats));
  ASSERT_TRUE(s.ok()) << s.status().ToString();
  EXPECT_EQ(s.value().stats_json, stats.stats_json);
}

TEST(ServeProtocolTest, ErrorResponseRoundTrip) {
  Response error = MakeErrorResponse(
      77, core::Status::InvalidArgument("boom goes the request"));
  auto decoded = DecodeResponseFrame(EncodeResponseFrame(error));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value().id, 77u);
  EXPECT_NE(decoded.value().status, 0u);
  EXPECT_NE(decoded.value().error.find("boom goes the request"),
            std::string::npos);
}

// ----------------------------------------------------------- corruption

TEST(ServeProtocolTest, EveryTruncationLengthFailsDescriptively) {
  Request request;
  request.id = 3;
  request.type = RequestType::kClassify;
  request.model = ClassifyModel::kTree;
  request.count = 2;
  request.dim = 4;
  request.values.assign(8, 1.0);
  std::vector<std::byte> frame = EncodeRequestFrame(request);
  ASSERT_TRUE(DecodeRequestFrame(frame).ok());
  for (size_t length = 0; length < frame.size(); ++length) {
    auto decoded = DecodeRequestFrame(Truncate(frame, length));
    ASSERT_FALSE(decoded.ok()) << "truncation to " << length
                               << " byte(s) decoded successfully";
    EXPECT_FALSE(decoded.status().message().empty());
  }
}

TEST(ServeProtocolTest, EveryResponseTruncationLengthFails) {
  Response response;
  response.id = 8;
  response.type = RequestType::kRecommend;
  response.recommendations = {{RuleHit{1, 0.9, 2.0, {4, 5}}}};
  std::vector<std::byte> frame = EncodeResponseFrame(response);
  ASSERT_TRUE(DecodeResponseFrame(frame).ok());
  for (size_t length = 0; length < frame.size(); ++length) {
    EXPECT_FALSE(DecodeResponseFrame(Truncate(frame, length)).ok())
        << "truncation to " << length;
  }
}

TEST(ServeProtocolTest, EveryMagicByteFlipFails) {
  Request request;
  request.id = 1;
  request.type = RequestType::kStats;
  std::vector<std::byte> frame = EncodeRequestFrame(request);
  for (size_t i = 0; i < 4; ++i) {
    std::vector<std::byte> bad = frame;
    bad[i] ^= std::byte{0x40};
    auto decoded = DecodeRequestFrame(bad);
    ASSERT_FALSE(decoded.ok()) << "magic byte " << i;
    EXPECT_NE(decoded.status().ToString().find("magic"),
              std::string::npos);
  }
}

TEST(ServeProtocolTest, LyingDeclaredLengthFails) {
  Request request;
  request.id = 1;
  request.type = RequestType::kStats;
  std::vector<std::byte> frame = EncodeRequestFrame(request);
  uint32_t length = 0;
  std::memcpy(&length, frame.data() + 4, sizeof(length));
  for (int delta : {-1, 1}) {
    std::vector<std::byte> bad = frame;
    uint32_t lying = length + static_cast<uint32_t>(delta);
    std::memcpy(bad.data() + 4, &lying, sizeof(lying));
    EXPECT_FALSE(DecodeRequestFrame(bad).ok()) << "delta " << delta;
  }
  // A declared length above the cap is rejected before any allocation.
  std::vector<std::byte> huge = frame;
  uint32_t over_cap = kMaxFrameBody + 1;
  std::memcpy(huge.data() + 4, &over_cap, sizeof(over_cap));
  auto decoded = DecodeRequestFrame(huge);
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.status().ToString().find("cap"), std::string::npos);
}

TEST(ServeProtocolTest, UnknownTypeAndModelFail) {
  Request stats;
  stats.id = 1;
  stats.type = RequestType::kStats;
  std::vector<std::byte> frame = EncodeRequestFrame(stats);
  // Body layout: u64 id, u8 type — the type byte sits at offset 16.
  frame[16] = std::byte{99};
  auto decoded = DecodeRequestFrame(frame);
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.status().ToString().find("unknown type"),
            std::string::npos);

  Request classify;
  classify.id = 1;
  classify.type = RequestType::kClassify;
  classify.count = 1;
  classify.dim = 1;
  classify.values = {1.0};
  std::vector<std::byte> cframe = EncodeRequestFrame(classify);
  cframe[17] = std::byte{42};  // model byte follows the type byte
  auto cdecoded = DecodeRequestFrame(cframe);
  ASSERT_FALSE(cdecoded.ok());
  EXPECT_NE(cdecoded.status().ToString().find("model"),
            std::string::npos);
}

TEST(ServeProtocolTest, CountAndDimCapViolationsFail) {
  Request classify;
  classify.id = 1;
  classify.type = RequestType::kClassify;
  classify.count = 1;
  classify.dim = 1;
  classify.values = {1.0};
  std::vector<std::byte> frame = EncodeRequestFrame(classify);
  // Body layout: id(8) type(1) model(1) count(4) dim(4) at body offsets
  // 0/8/9/10/14 => frame offsets +8.
  const size_t count_at = 8 + 8 + 1 + 1;
  const size_t dim_at = count_at + 4;
  for (uint32_t bad_count : {0u, kMaxRecordsPerRequest + 1}) {
    std::vector<std::byte> bad = frame;
    std::memcpy(bad.data() + count_at, &bad_count, sizeof(bad_count));
    EXPECT_FALSE(DecodeRequestFrame(bad).ok()) << bad_count;
  }
  for (uint32_t bad_dim : {0u, kMaxRecordDim + 1}) {
    std::vector<std::byte> bad = frame;
    std::memcpy(bad.data() + dim_at, &bad_dim, sizeof(bad_dim));
    EXPECT_FALSE(DecodeRequestFrame(bad).ok()) << bad_dim;
  }

  Request recommend;
  recommend.id = 1;
  recommend.type = RequestType::kRecommend;
  recommend.top_k = 1;
  recommend.count = 1;
  recommend.baskets = {{1}};
  std::vector<std::byte> rframe = EncodeRequestFrame(recommend);
  const size_t top_k_at = 8 + 8 + 1;  // id, type, then top_k
  uint32_t bad_top_k = kMaxTopK + 1;
  std::memcpy(rframe.data() + top_k_at, &bad_top_k, sizeof(bad_top_k));
  auto decoded = DecodeRequestFrame(rframe);
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.status().ToString().find("top_k"), std::string::npos);
}

TEST(ServeProtocolTest, TrailingGarbageFails) {
  Request request;
  request.id = 1;
  request.type = RequestType::kStats;
  std::vector<std::byte> frame = EncodeRequestFrame(request);
  frame.push_back(std::byte{0xAB});
  uint32_t length = 0;
  std::memcpy(&length, frame.data() + 4, sizeof(length));
  ++length;  // keep the header honest so only the body is malformed
  std::memcpy(frame.data() + 4, &length, sizeof(length));
  EXPECT_FALSE(DecodeRequestFrame(frame).ok());
}

// ------------------------------------------------------------ LRU cache

TEST(ShardedLruCacheTest, HitRefreshAndEviction) {
  ShardedLruCache cache(/*capacity=*/2, /*num_shards=*/1);
  std::vector<RuleHit> a = {RuleHit{1, 0.5, 1.0, {2}}};
  std::vector<RuleHit> b = {RuleHit{2, 0.6, 1.1, {3}}};
  std::vector<RuleHit> c = {RuleHit{3, 0.7, 1.2, {4}}};
  EXPECT_EQ(cache.Put("a", a), 0u);
  EXPECT_EQ(cache.Put("b", b), 0u);
  ASSERT_TRUE(cache.Get("a").has_value());  // refreshes "a"
  EXPECT_EQ(cache.Put("c", c), 1u);         // evicts "b", the LRU entry
  EXPECT_FALSE(cache.Get("b").has_value());
  ASSERT_TRUE(cache.Get("a").has_value());
  EXPECT_EQ(*cache.Get("a"), a);
  ASSERT_TRUE(cache.Get("c").has_value());
  EXPECT_EQ(cache.Size(), 2u);
}

TEST(ShardedLruCacheTest, PutRefreshesExistingKey) {
  ShardedLruCache cache(/*capacity=*/4, /*num_shards=*/2);
  std::vector<RuleHit> v1 = {RuleHit{1, 0.5, 1.0, {2}}};
  std::vector<RuleHit> v2 = {RuleHit{9, 0.9, 2.0, {7}}};
  EXPECT_EQ(cache.Put("k", v1), 0u);
  EXPECT_EQ(cache.Put("k", v2), 0u);
  EXPECT_EQ(cache.Size(), 1u);
  EXPECT_EQ(*cache.Get("k"), v2);
}

// --------------------------------------------------- server robustness

class ServeServerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    bundle_ = new std::shared_ptr<const ModelBundle>(
        testutil::MakeTestBundle());
  }
  static void TearDownTestSuite() {
    delete bundle_;
    bundle_ = nullptr;
  }
  static std::shared_ptr<const ModelBundle> bundle() { return *bundle_; }

 private:
  static std::shared_ptr<const ModelBundle>* bundle_;
};

std::shared_ptr<const ModelBundle>* ServeServerTest::bundle_ = nullptr;

TEST_F(ServeServerTest, MalformedFrameYieldsErrorResponseAndServerLives) {
  Server server(bundle(), ServeOptions{});
  std::vector<std::byte> garbage(20, std::byte{0x5A});
  auto error = DecodeResponseFrame(server.HandleFrame(garbage));
  ASSERT_TRUE(error.ok()) << error.status().ToString();
  EXPECT_NE(error.value().status, 0u);
  EXPECT_FALSE(error.value().error.empty());

  // The server still serves valid requests afterwards.
  Request request = testutil::MakeClassifyRequest(
      5, ClassifyModel::kTree, bundle()->train(), {0, 1, 2});
  auto ok = DecodeResponseFrame(
      server.HandleFrame(EncodeRequestFrame(request)));
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(ok.value().status, 0u);
  EXPECT_EQ(ok.value().id, 5u);
  EXPECT_EQ(ok.value().labels.size(), 3u);
}

TEST_F(ServeServerTest, ValidationErrorEchoesRequestId) {
  Server server(bundle(), ServeOptions{});
  Request request;
  request.id = 123;
  request.type = RequestType::kClassify;
  request.model = ClassifyModel::kTree;
  request.count = 1;
  request.dim = 2;  // bundle schema expects 9 features
  request.values = {1.0, 2.0};
  auto response = DecodeResponseFrame(
      server.HandleFrame(EncodeRequestFrame(request)));
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_NE(response.value().status, 0u);
  EXPECT_EQ(response.value().id, 123u);
  EXPECT_FALSE(response.value().error.empty());
}

TEST_F(ServeServerTest, AbsentArtifactIsFailedPreconditionNotCrash) {
  auto rules_only = ModelBundle::FromParts(
      std::nullopt, std::nullopt, std::nullopt, bundle()->rules());
  ASSERT_TRUE(rules_only.ok()) << rules_only.status().ToString();
  Server server(rules_only.value(), ServeOptions{});
  Request request = testutil::MakeClusterRequest(4, {0.0, 0.0}, 2);
  auto response = DecodeResponseFrame(
      server.HandleFrame(EncodeRequestFrame(request)));
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_NE(response.value().status, 0u);
  EXPECT_EQ(response.value().id, 4u);

  // Rules are present, so recommendation still works on the same server.
  Request rules = testutil::MakeRecommendRequest(6, 3, {{1, 2, 3}});
  auto ok = DecodeResponseFrame(
      server.HandleFrame(EncodeRequestFrame(rules)));
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(ok.value().status, 0u);
  EXPECT_EQ(ok.value().recommendations.size(), 1u);
}

TEST_F(ServeServerTest, HandleFramesPreservesOrderAroundFailures) {
  Server server(bundle(), ServeOptions{});
  std::vector<std::vector<std::byte>> frames;
  frames.push_back(EncodeRequestFrame(testutil::MakeClassifyRequest(
      1, ClassifyModel::kNaiveBayes, bundle()->train(), {0})));
  frames.push_back(std::vector<std::byte>(5, std::byte{0x00}));
  frames.push_back(EncodeRequestFrame(
      testutil::MakeRecommendRequest(3, 4, {{2, 5, 9}})));
  auto responses = server.HandleFrames(frames);
  ASSERT_EQ(responses.size(), 3u);
  auto first = DecodeResponseFrame(responses[0]);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first.value().id, 1u);
  EXPECT_EQ(first.value().status, 0u);
  auto second = DecodeResponseFrame(responses[1]);
  ASSERT_TRUE(second.ok());
  EXPECT_NE(second.value().status, 0u);
  auto third = DecodeResponseFrame(responses[2]);
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(third.value().id, 3u);
  EXPECT_EQ(third.value().status, 0u);
}

// -------------------------------------------------- stream robustness

/// Reads response frames from `fd` into an id-keyed map (responses may
/// complete out of order) until `expected` frames arrived.
std::map<uint64_t, Response> CollectResponses(int fd, size_t expected) {
  std::map<uint64_t, Response> responses;
  for (size_t i = 0; i < expected; ++i) {
    auto frame = ReadFrame(fd, kResponseMagic);
    if (!frame.ok() || frame.value().empty()) break;
    auto response = DecodeResponseFrame(frame.value());
    if (!response.ok()) break;
    responses[response.value().id] = std::move(response).value();
  }
  return responses;
}

TEST_F(ServeServerTest, StreamSurvivesMalformedBody) {
  Server server(bundle(), ServeOptions{});
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);

  std::thread serving([&] {
    core::Status status = ServeStream(&server, sv[1], sv[1]);
    EXPECT_TRUE(status.ok()) << status.ToString();
    ::close(sv[1]);
  });

  // stats, then a frame whose header is fine but whose body has an
  // unknown type (framing survives, the request errors), then stats.
  Request stats1;
  stats1.id = 1;
  stats1.type = RequestType::kStats;
  Request stats3 = stats1;
  stats3.id = 3;
  std::vector<std::byte> bad = EncodeRequestFrame(stats1);
  bad[16] = std::byte{77};  // type byte

  for (const auto& frame :
       {EncodeRequestFrame(stats1), bad, EncodeRequestFrame(stats3)}) {
    ASSERT_TRUE(WriteAll(sv[0], frame).ok());
  }
  ASSERT_EQ(::shutdown(sv[0], SHUT_WR), 0);

  std::map<uint64_t, Response> responses = CollectResponses(sv[0], 3);
  serving.join();
  ::close(sv[0]);

  ASSERT_EQ(responses.size(), 3u);
  EXPECT_EQ(responses.at(1).status, 0u);
  EXPECT_EQ(responses.at(3).status, 0u);
  EXPECT_NE(responses.at(0).status, 0u);  // decode failures report id 0
  EXPECT_FALSE(responses.at(0).error.empty());
}

TEST_F(ServeServerTest, StreamClosesCleanlyOnBadHeader) {
  Server server(bundle(), ServeOptions{});
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);

  core::Status stream_status = core::Status::OK();
  std::thread serving([&] {
    stream_status = ServeStream(&server, sv[1], sv[1]);
    ::close(sv[1]);
  });

  Request stats;
  stats.id = 1;
  stats.type = RequestType::kStats;
  ASSERT_TRUE(WriteAll(sv[0], EncodeRequestFrame(stats)).ok());
  std::vector<std::byte> garbage(kFrameHeaderBytes, std::byte{0xEE});
  ASSERT_TRUE(WriteAll(sv[0], garbage).ok());
  ASSERT_EQ(::shutdown(sv[0], SHUT_WR), 0);

  std::map<uint64_t, Response> responses = CollectResponses(sv[0], 2);
  serving.join();
  ::close(sv[0]);

  // The stream reported the framing error (and only the stream died —
  // the server object is still usable below).
  EXPECT_FALSE(stream_status.ok());
  ASSERT_TRUE(responses.count(0));
  EXPECT_NE(responses.at(0).status, 0u);

  Request probe = testutil::MakeRecommendRequest(9, 2, {{1, 2}});
  auto after = DecodeResponseFrame(
      server.HandleFrame(EncodeRequestFrame(probe)));
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.value().status, 0u);
}

TEST_F(ServeServerTest, BatchQueueDeliversErrorsAndKeepsServing) {
  ServeOptions options;
  options.batch_size = 4;
  options.num_threads = 2;
  Server server(bundle(), options);
  std::mutex mutex;
  std::map<uint64_t, Response> responses;
  auto collect = [&](std::vector<std::byte> frame) {
    auto response = DecodeResponseFrame(frame);
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    std::lock_guard<std::mutex> lock(mutex);
    responses[response.value().id] = std::move(response).value();
  };
  {
    BatchQueue queue(&server);
    queue.Submit(EncodeRequestFrame(testutil::MakeClassifyRequest(
                     1, ClassifyModel::kKnn, bundle()->train(), {4})),
                 collect);
    queue.Submit(std::vector<std::byte>(3, std::byte{0x11}), collect);
    queue.Flush();
    // The malformed frame did not wedge the queue: later requests on the
    // same queue still complete.
    queue.Submit(EncodeRequestFrame(
                     testutil::MakeRecommendRequest(7, 3, {{3, 4}})),
                 collect);
    queue.Flush();
  }
  ASSERT_EQ(responses.size(), 3u);
  EXPECT_EQ(responses.at(1).status, 0u);
  EXPECT_EQ(responses.at(1).labels.size(), 1u);
  EXPECT_NE(responses.at(0).status, 0u);
  EXPECT_EQ(responses.at(7).status, 0u);
}

}  // namespace
}  // namespace dmt::serve
