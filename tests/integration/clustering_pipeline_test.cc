// End-to-end clustering: one synthetic population, every algorithm, one
// consistent score sheet — plus model-selection helpers (k-dist for
// DBSCAN's eps, silhouette across k for k-means).
#include <gtest/gtest.h>

#include "cluster/agglomerative.h"
#include "cluster/birch.h"
#include "cluster/clarans.h"
#include "cluster/dbscan.h"
#include "cluster/kmeans.h"
#include "eval/clustering_metrics.h"
#include "gen/mixture.h"

namespace dmt {
namespace {

TEST(ClusteringPipelineTest, AllAlgorithmsRecoverTheSamePartition) {
  auto data = gen::GenerateBirchGrid(9, 120, 24.0, 1.0, 77);
  ASSERT_TRUE(data.ok());

  std::vector<std::pair<const char*, std::vector<uint32_t>>> results;

  cluster::KMeansOptions kmeans_options;
  kmeans_options.k = 9;
  kmeans_options.seed = 3;
  auto kmeans = cluster::KMeans(data->points, kmeans_options);
  ASSERT_TRUE(kmeans.ok());
  results.emplace_back("kmeans", kmeans->assignments);

  cluster::BirchOptions birch_options;
  birch_options.global_clusters = 9;
  birch_options.threshold = 2.0;
  auto birch = cluster::Birch(data->points, birch_options);
  ASSERT_TRUE(birch.ok());
  results.emplace_back("birch", birch->clustering.assignments);

  cluster::ClaransOptions clarans_options;
  clarans_options.k = 9;
  clarans_options.max_neighbors = 800;
  auto clarans = cluster::Clarans(data->points, clarans_options);
  ASSERT_TRUE(clarans.ok());
  results.emplace_back("clarans", clarans->assignments);

  auto dendrogram =
      cluster::AgglomerativeCluster(data->points, cluster::Linkage::kWard);
  ASSERT_TRUE(dendrogram.ok());
  auto ward = dendrogram->CutAtK(9);
  ASSERT_TRUE(ward.ok());
  results.emplace_back("ward", *ward);

  cluster::DbscanOptions dbscan_options;
  dbscan_options.eps = 3.5;
  dbscan_options.min_points = 6;
  auto dbscan = cluster::Dbscan(data->points, dbscan_options);
  ASSERT_TRUE(dbscan.ok());
  std::vector<uint32_t> dbscan_labels;
  for (int32_t label : dbscan->labels) {
    dbscan_labels.push_back(
        label == cluster::DbscanResult::kNoise ? 999u
                                               : static_cast<uint32_t>(label));
  }
  results.emplace_back("dbscan", dbscan_labels);

  // Every method against ground truth AND against each other.
  for (const auto& [name, assignment] : results) {
    auto ari = eval::AdjustedRandIndex(data->labels, assignment);
    ASSERT_TRUE(ari.ok()) << name;
    EXPECT_GT(*ari, 0.95) << name;
    auto silhouette = eval::MeanSilhouette(data->points, assignment);
    ASSERT_TRUE(silhouette.ok()) << name;
    EXPECT_GT(*silhouette, 0.5) << name;
  }
  for (size_t a = 0; a < results.size(); ++a) {
    for (size_t b = a + 1; b < results.size(); ++b) {
      auto ari =
          eval::AdjustedRandIndex(results[a].second, results[b].second);
      ASSERT_TRUE(ari.ok());
      EXPECT_GT(*ari, 0.9)
          << results[a].first << " vs " << results[b].first;
    }
  }
}

TEST(ClusteringPipelineTest, KDistGuidedEpsWorks) {
  // Pick eps from the k-dist valley (here: a robust quantile of the
  // curve), then DBSCAN with it must recover the clusters.
  auto data = gen::GenerateBirchGrid(4, 150, 30.0, 0.8, 13);
  ASSERT_TRUE(data.ok());
  auto distances = cluster::SortedKDistances(data->points, 4);
  ASSERT_TRUE(distances.ok());
  // Descending curve: take the value 10% in — past the noisy head, before
  // the flat cluster-core tail.
  double eps = (*distances)[distances->size() / 10] * 1.2;
  cluster::DbscanOptions options;
  options.eps = eps;
  options.min_points = 5;
  auto result = cluster::Dbscan(data->points, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_clusters, 4u);
}

TEST(ClusteringPipelineTest, SilhouetteSelectsTheTrueK) {
  auto data = gen::GenerateBirchGrid(4, 100, 25.0, 0.8, 21);
  ASSERT_TRUE(data.ok());
  double best_score = -2.0;
  size_t best_k = 0;
  for (size_t k : {2u, 3u, 4u, 6u, 8u}) {
    cluster::KMeansOptions options;
    options.k = k;
    options.seed = 5;
    auto result = cluster::KMeans(data->points, options);
    ASSERT_TRUE(result.ok());
    auto silhouette =
        eval::MeanSilhouette(data->points, result->assignments);
    ASSERT_TRUE(silhouette.ok());
    if (*silhouette > best_score) {
      best_score = *silhouette;
      best_k = k;
    }
  }
  EXPECT_EQ(best_k, 4u);
  EXPECT_GT(best_score, 0.7);
}

}  // namespace
}  // namespace dmt
