// End-to-end classification: synthetic generation -> stratified k-fold
// cross-validation -> every classifier -> metric aggregation, checking the
// expected quality ordering holds fold over fold.
#include <gtest/gtest.h>

#include "classify/knn.h"
#include "classify/naive_bayes.h"
#include "classify/one_r.h"
#include "core/stats.h"
#include "eval/cross_validation.h"
#include "eval/metrics.h"
#include "gen/agrawal.h"
#include "tree/builder.h"
#include "tree/discretize.h"
#include "tree/pruning.h"

namespace dmt {
namespace {

using core::Dataset;

double FoldAccuracy(const Dataset& test,
                    const std::vector<uint32_t>& predictions) {
  std::vector<uint32_t> truth(test.labels().begin(), test.labels().end());
  auto accuracy = eval::Accuracy(truth, predictions);
  EXPECT_TRUE(accuracy.ok());
  return accuracy.ValueOr(0.0);
}

TEST(ClassificationPipelineTest, CrossValidatedComparisonOnF2) {
  gen::AgrawalParams params;
  params.function = 2;
  params.num_records = 3000;
  params.perturbation = 0.05;
  auto data = gen::GenerateAgrawal(params, 2026);
  ASSERT_TRUE(data.ok());

  auto folds = eval::StratifiedKFold(data->labels(), 3, 7);
  ASSERT_TRUE(folds.ok());

  core::RunningStats cart_acc, c45_acc, nb_acc, one_r_acc;
  for (const auto& fold : *folds) {
    Dataset train, test;
    eval::MaterializeSplit(*data, fold, &train, &test);

    auto cart = tree::BuildCart(train);
    ASSERT_TRUE(cart.ok());
    tree::CostComplexityPrune(&*cart, 0.0005);
    cart_acc.Add(FoldAccuracy(test, cart->PredictAll(test)));

    auto c45 = tree::BuildC45(train);
    ASSERT_TRUE(c45.ok());
    ASSERT_TRUE(tree::PessimisticPrune(&*c45).ok());
    c45_acc.Add(FoldAccuracy(test, c45->PredictAll(test)));

    classify::NaiveBayesClassifier nb;
    ASSERT_TRUE(nb.Fit(train).ok());
    auto nb_pred = nb.PredictAll(test);
    ASSERT_TRUE(nb_pred.ok());
    nb_acc.Add(FoldAccuracy(test, *nb_pred));

    classify::OneRClassifier one_r;
    ASSERT_TRUE(one_r.Fit(train).ok());
    auto one_r_pred = one_r.PredictAll(test);
    ASSERT_TRUE(one_r_pred.ok());
    one_r_acc.Add(FoldAccuracy(test, *one_r_pred));
  }

  // F2 is a two-attribute rectangle predicate: trees must beat both the
  // single-attribute and the independence-assuming baselines on average.
  EXPECT_GT(cart_acc.mean(), 0.9);
  EXPECT_GT(c45_acc.mean(), 0.85);
  EXPECT_GT(cart_acc.mean(), one_r_acc.mean());
  EXPECT_GT(cart_acc.mean(), nb_acc.mean());
  EXPECT_GT(c45_acc.mean(), nb_acc.mean());
  // Every classifier beats coin flipping on every fold.
  EXPECT_GT(one_r_acc.min(), 0.5);
  EXPECT_GT(nb_acc.min(), 0.5);
}

TEST(ClassificationPipelineTest, DiscretizedPipelineMatchesSchema) {
  gen::AgrawalParams params;
  params.function = 3;
  params.num_records = 1500;
  auto data = gen::GenerateAgrawal(params, 5);
  ASSERT_TRUE(data.ok());
  auto split = eval::StratifiedTrainTestSplit(data->labels(), 0.3, 1);
  ASSERT_TRUE(split.ok());
  Dataset train, test;
  eval::MaterializeSplit(*data, *split, &train, &test);

  // Discretize both sides with the same binning and feed ID3 + categorical
  // naive Bayes; both must run and beat the majority baseline.
  auto binned_train = tree::EqualFrequencyDiscretize(train, 6);
  auto binned_test = tree::EqualFrequencyDiscretize(test, 6);
  ASSERT_TRUE(binned_train.ok());
  ASSERT_TRUE(binned_test.ok());
  auto id3 = tree::BuildId3(*binned_train);
  ASSERT_TRUE(id3.ok());
  double id3_accuracy =
      FoldAccuracy(*binned_test, id3->PredictAll(*binned_test));

  auto class_counts = test.ClassCounts();
  double majority =
      static_cast<double>(
          *std::max_element(class_counts.begin(), class_counts.end())) /
      static_cast<double>(test.num_rows());
  EXPECT_GT(id3_accuracy, majority);
}

TEST(ClassificationPipelineTest, ConfusionMatrixAggregatesAcrossFolds) {
  gen::AgrawalParams params;
  params.function = 1;
  params.num_records = 1200;
  auto data = gen::GenerateAgrawal(params, 9);
  ASSERT_TRUE(data.ok());
  auto folds = eval::StratifiedKFold(data->labels(), 4, 3);
  ASSERT_TRUE(folds.ok());
  std::vector<uint32_t> all_truth, all_predictions;
  for (const auto& fold : *folds) {
    Dataset train, test;
    eval::MaterializeSplit(*data, fold, &train, &test);
    auto cart = tree::BuildCart(train);
    ASSERT_TRUE(cart.ok());
    auto predictions = cart->PredictAll(test);
    for (size_t row = 0; row < test.num_rows(); ++row) {
      all_truth.push_back(test.Label(row));
      all_predictions.push_back(predictions[row]);
    }
  }
  // Every row predicted exactly once across folds.
  EXPECT_EQ(all_truth.size(), data->num_rows());
  auto matrix = eval::ConfusionMatrix::FromPredictions(2, all_truth,
                                                       all_predictions);
  ASSERT_TRUE(matrix.ok());
  EXPECT_GT(matrix->Accuracy(), 0.95);
  EXPECT_GT(matrix->MacroF1(), 0.95);
}

}  // namespace
}  // namespace dmt
