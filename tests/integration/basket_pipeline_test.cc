// End-to-end pipeline: synthetic workload generation -> mining (every
// algorithm) -> rule generation -> maximal/closed filters, on a realistic
// Quest workload.
#include <gtest/gtest.h>

#include "assoc/apriori.h"
#include "assoc/eclat.h"
#include "assoc/fp_growth.h"
#include "assoc/postprocess.h"
#include "assoc/rules.h"
#include "gen/quest.h"

namespace dmt {
namespace {

TEST(BasketPipelineTest, FullPipelineOnQuestWorkload) {
  gen::QuestParams quest;
  quest.num_transactions = 2000;
  quest.avg_transaction_size = 8.0;
  quest.avg_pattern_size = 4.0;
  quest.num_items = 200;
  quest.num_patterns = 50;
  auto db = gen::GenerateQuestTransactions(quest, 2026);
  ASSERT_TRUE(db.ok());

  assoc::MiningParams params;
  params.min_support = 0.01;
  auto apriori = assoc::MineApriori(*db, params);
  auto apriori_tid = assoc::MineAprioriTid(*db, params);
  auto fp = assoc::MineFpGrowth(*db, params);
  auto eclat = assoc::MineEclat(*db, params);
  ASSERT_TRUE(apriori.ok());
  ASSERT_TRUE(apriori_tid.ok());
  ASSERT_TRUE(fp.ok());
  ASSERT_TRUE(eclat.ok());

  // Planted patterns must produce multi-item frequent sets.
  EXPECT_GT(apriori->itemsets.size(), 100u);
  size_t multi = 0;
  for (const auto& itemset : apriori->itemsets) {
    if (itemset.items.size() >= 2) ++multi;
  }
  EXPECT_GT(multi, 10u);

  // All four algorithms agree exactly.
  EXPECT_EQ(apriori->itemsets, apriori_tid->itemsets);
  EXPECT_EQ(apriori->itemsets, fp->itemsets);
  EXPECT_EQ(apriori->itemsets, eclat->itemsets);

  // Rules from the agreed collection.
  assoc::RuleParams rule_params;
  rule_params.min_confidence = 0.6;
  auto rules = assoc::GenerateRules(*apriori, db->size(), rule_params);
  ASSERT_TRUE(rules.ok());
  EXPECT_FALSE(rules->empty());
  for (const auto& rule : *rules) {
    EXPECT_GE(rule.confidence, 0.6 - 1e-12);
    EXPECT_GT(rule.lift, 0.0);
  }

  // Filters nest: maximal ⊆ closed ⊆ all.
  auto maximal = assoc::FilterMaximal(apriori->itemsets);
  auto closed = assoc::FilterClosed(apriori->itemsets);
  EXPECT_LE(maximal.size(), closed.size());
  EXPECT_LE(closed.size(), apriori->itemsets.size());
  EXPECT_FALSE(maximal.empty());
}

}  // namespace
}  // namespace dmt
