#include "classify/one_r.h"

#include <gtest/gtest.h>

#include "eval/cross_validation.h"
#include "eval/metrics.h"
#include "gen/agrawal.h"

namespace dmt::classify {
namespace {

using core::Dataset;
using core::DatasetBuilder;

TEST(OneRTest, PicksThePerfectlyPredictiveAttribute) {
  DatasetBuilder builder;
  builder
      .AddCategoricalColumn("noise", {0, 1, 0, 1, 0, 1}, {"a", "b"})
      .AddCategoricalColumn("signal", {0, 0, 0, 1, 1, 1}, {"x", "y"})
      .SetLabels({0, 0, 0, 1, 1, 1}, {"no", "yes"});
  auto data = builder.Build();
  ASSERT_TRUE(data.ok());
  OneRClassifier one_r;
  ASSERT_TRUE(one_r.Fit(*data).ok());
  EXPECT_EQ(one_r.chosen_attribute(), 1u);
  EXPECT_DOUBLE_EQ(one_r.training_error(), 0.0);
  auto predictions = one_r.PredictAll(*data);
  ASSERT_TRUE(predictions.ok());
  for (size_t row = 0; row < data->num_rows(); ++row) {
    EXPECT_EQ((*predictions)[row], data->Label(row));
  }
}

TEST(OneRTest, NumericAttributeGetsIntervals) {
  DatasetBuilder builder;
  std::vector<double> values;
  std::vector<uint32_t> labels;
  for (int i = 0; i < 20; ++i) {
    values.push_back(static_cast<double>(i));
    labels.push_back(i < 10 ? 0 : 1);
  }
  builder.AddNumericColumn("x", std::move(values))
      .SetLabels(std::move(labels), {"lo", "hi"});
  auto data = builder.Build();
  ASSERT_TRUE(data.ok());
  OneRClassifier one_r;
  ASSERT_TRUE(one_r.Fit(*data).ok());
  EXPECT_DOUBLE_EQ(one_r.training_error(), 0.0);
  auto predictions = one_r.PredictAll(*data);
  ASSERT_TRUE(predictions.ok());
  for (size_t row = 0; row < data->num_rows(); ++row) {
    EXPECT_EQ((*predictions)[row], data->Label(row));
  }
  std::string rule = one_r.RuleToString();
  EXPECT_NE(rule.find("x"), std::string::npos);
  EXPECT_NE(rule.find("<="), std::string::npos);
}

TEST(OneRTest, MinBucketPreventsTinyIntervals) {
  // Alternating labels: with min_bucket 6 the rule cannot chase every
  // flip, so training error stays substantial (no overfit).
  DatasetBuilder builder;
  std::vector<double> values;
  std::vector<uint32_t> labels;
  for (int i = 0; i < 24; ++i) {
    values.push_back(static_cast<double>(i));
    labels.push_back(i % 2);
  }
  builder.AddNumericColumn("x", std::move(values))
      .SetLabels(std::move(labels), {"a", "b"});
  auto data = builder.Build();
  ASSERT_TRUE(data.ok());
  OneRClassifier one_r;
  ASSERT_TRUE(one_r.Fit(*data).ok());
  EXPECT_GE(one_r.training_error(), 0.3);
}

TEST(OneRTest, NearsOptimalOnAgrawalF1) {
  // F1 is a pure age predicate, exactly what 1R can represent.
  gen::AgrawalParams params;
  params.function = 1;
  params.num_records = 4000;
  auto data = gen::GenerateAgrawal(params, 51);
  ASSERT_TRUE(data.ok());
  auto split = eval::StratifiedTrainTestSplit(data->labels(), 0.3, 9);
  ASSERT_TRUE(split.ok());
  Dataset train, test;
  eval::MaterializeSplit(*data, *split, &train, &test);
  OneRClassifier one_r;
  ASSERT_TRUE(one_r.Fit(train).ok());
  EXPECT_EQ(train.attribute(one_r.chosen_attribute()).name, "age");
  auto predictions = one_r.PredictAll(test);
  ASSERT_TRUE(predictions.ok());
  std::vector<uint32_t> truth(test.labels().begin(), test.labels().end());
  auto accuracy = eval::Accuracy(truth, *predictions);
  ASSERT_TRUE(accuracy.ok());
  EXPECT_GT(*accuracy, 0.95);
}

TEST(OneRTest, UnseenCategoryFallsBackToMajority) {
  DatasetBuilder train_builder;
  train_builder
      .AddCategoricalColumn("c", {0, 0, 1}, {"a", "b", "never_seen"})
      .SetLabels({0, 0, 1}, {"x", "y"});
  auto train = train_builder.Build();
  ASSERT_TRUE(train.ok());
  DatasetBuilder test_builder;
  test_builder
      .AddCategoricalColumn("c", {2}, {"a", "b", "never_seen"})
      .SetLabels({0}, {"x", "y"});
  auto test = test_builder.Build();
  ASSERT_TRUE(test.ok());
  OneRClassifier one_r;
  ASSERT_TRUE(one_r.Fit(*train).ok());
  auto predictions = one_r.PredictAll(*test);
  ASSERT_TRUE(predictions.ok());
  EXPECT_EQ((*predictions)[0], 0u);  // global majority is class x
}

TEST(OneRTest, PredictBeforeFitFails) {
  DatasetBuilder builder;
  builder.AddNumericColumn("x", {1.0}).SetLabels({0}, {"a"});
  auto data = builder.Build();
  ASSERT_TRUE(data.ok());
  OneRClassifier one_r;
  EXPECT_FALSE(one_r.PredictAll(*data).ok());
}

TEST(OneRTest, ValidatesOptions) {
  DatasetBuilder builder;
  builder.AddNumericColumn("x", {1.0}).SetLabels({0}, {"a"});
  auto data = builder.Build();
  ASSERT_TRUE(data.ok());
  OneROptions options;
  options.min_bucket = 0;
  OneRClassifier one_r(options);
  EXPECT_FALSE(one_r.Fit(*data).ok());
}

TEST(OneRTest, CategoricalRuleRendering) {
  DatasetBuilder builder;
  builder.AddCategoricalColumn("color", {0, 0, 1, 1}, {"red", "blue"})
      .SetLabels({0, 0, 1, 1}, {"stop", "go"});
  auto data = builder.Build();
  ASSERT_TRUE(data.ok());
  OneRClassifier one_r;
  ASSERT_TRUE(one_r.Fit(*data).ok());
  std::string rule = one_r.RuleToString();
  EXPECT_NE(rule.find("color = red -> stop"), std::string::npos);
  EXPECT_NE(rule.find("color = blue -> go"), std::string::npos);
}

}  // namespace
}  // namespace dmt::classify
