#include "classify/naive_bayes.h"

#include <gtest/gtest.h>

#include <cmath>

#include "eval/cross_validation.h"
#include "eval/metrics.h"
#include "gen/agrawal.h"

namespace dmt::classify {
namespace {

using core::Dataset;
using core::DatasetBuilder;

Dataset GaussianBlobs() {
  // Two well-separated 1-d Gaussians.
  DatasetBuilder builder;
  std::vector<double> values;
  std::vector<uint32_t> labels;
  for (int i = 0; i < 20; ++i) {
    values.push_back(0.0 + 0.1 * i);
    labels.push_back(0);
    values.push_back(10.0 + 0.1 * i);
    labels.push_back(1);
  }
  builder.AddNumericColumn("x", std::move(values))
      .SetLabels(std::move(labels), {"left", "right"});
  auto result = builder.Build();
  EXPECT_TRUE(result.ok());
  return std::move(result).value();
}

TEST(NaiveBayesTest, SeparatesGaussianBlobs) {
  Dataset data = GaussianBlobs();
  NaiveBayesClassifier nb;
  ASSERT_TRUE(nb.Fit(data).ok());
  auto predictions = nb.PredictAll(data);
  ASSERT_TRUE(predictions.ok());
  for (size_t row = 0; row < data.num_rows(); ++row) {
    EXPECT_EQ((*predictions)[row], data.Label(row));
  }
}

TEST(NaiveBayesTest, CategoricalLikelihoodsWithSmoothing) {
  // Class a: always category 0. Class b: always category 1. A Laplace
  // alpha keeps unseen combinations finite.
  DatasetBuilder builder;
  builder.AddCategoricalColumn("c", {0, 0, 0, 1, 1, 1}, {"x", "y"})
      .SetLabels({0, 0, 0, 1, 1, 1}, {"a", "b"});
  auto data = builder.Build();
  ASSERT_TRUE(data.ok());
  NaiveBayesClassifier nb;
  ASSERT_TRUE(nb.Fit(*data).ok());
  auto predictions = nb.PredictAll(*data);
  ASSERT_TRUE(predictions.ok());
  EXPECT_EQ((*predictions)[0], 0u);
  EXPECT_EQ((*predictions)[3], 1u);
  // Log scores are finite for the cross combination.
  auto scores = nb.LogScores(*data, 0);
  ASSERT_TRUE(scores.ok());
  for (double s : *scores) EXPECT_TRUE(std::isfinite(s));
}

TEST(NaiveBayesTest, PredictBeforeFitFails) {
  Dataset data = GaussianBlobs();
  NaiveBayesClassifier nb;
  auto predictions = nb.PredictAll(data);
  EXPECT_FALSE(predictions.ok());
  EXPECT_EQ(predictions.status().code(),
            core::StatusCode::kFailedPrecondition);
}

TEST(NaiveBayesTest, SchemaMismatchRejected) {
  Dataset data = GaussianBlobs();
  NaiveBayesClassifier nb;
  ASSERT_TRUE(nb.Fit(data).ok());
  DatasetBuilder builder;
  builder.AddNumericColumn("x", {1.0})
      .AddNumericColumn("y", {2.0})
      .SetLabels({0}, {"left", "right"});
  auto wider = builder.Build();
  ASSERT_TRUE(wider.ok());
  EXPECT_FALSE(nb.PredictAll(*wider).ok());
}

TEST(NaiveBayesTest, ZeroVarianceColumnHandled) {
  DatasetBuilder builder;
  builder.AddNumericColumn("x", {1.0, 1.0, 2.0, 2.0})
      .SetLabels({0, 0, 1, 1}, {"a", "b"});
  auto data = builder.Build();
  ASSERT_TRUE(data.ok());
  NaiveBayesClassifier nb;
  ASSERT_TRUE(nb.Fit(*data).ok());
  auto predictions = nb.PredictAll(*data);
  ASSERT_TRUE(predictions.ok());
  EXPECT_EQ((*predictions)[0], 0u);
  EXPECT_EQ((*predictions)[2], 1u);
}

TEST(NaiveBayesTest, PriorsInfluencePredictions) {
  // Identical likelihoods; class 1 has a much larger prior.
  DatasetBuilder builder;
  std::vector<double> values(20, 3.0);
  std::vector<uint32_t> labels(20, 1);
  labels[0] = 0;
  values[0] = 3.0;
  builder.AddNumericColumn("x", std::move(values))
      .SetLabels(std::move(labels), {"rare", "common"});
  auto data = builder.Build();
  ASSERT_TRUE(data.ok());
  NaiveBayesClassifier nb;
  ASSERT_TRUE(nb.Fit(*data).ok());
  auto predictions = nb.PredictAll(*data);
  ASSERT_TRUE(predictions.ok());
  for (uint32_t p : *predictions) EXPECT_EQ(p, 1u);
}

TEST(NaiveBayesTest, ReasonableAccuracyOnAgrawal) {
  gen::AgrawalParams params;
  params.function = 1;
  params.num_records = 3000;
  auto data = gen::GenerateAgrawal(params, 41);
  ASSERT_TRUE(data.ok());
  auto split = eval::StratifiedTrainTestSplit(data->labels(), 0.3, 7);
  ASSERT_TRUE(split.ok());
  Dataset train, test;
  eval::MaterializeSplit(*data, *split, &train, &test);
  NaiveBayesClassifier nb;
  ASSERT_TRUE(nb.Fit(train).ok());
  auto predictions = nb.PredictAll(test);
  ASSERT_TRUE(predictions.ok());
  std::vector<uint32_t> truth(test.labels().begin(), test.labels().end());
  auto accuracy = eval::Accuracy(truth, *predictions);
  ASSERT_TRUE(accuracy.ok());
  // F1's disjunction (age<40 or age>=60) is not axis-Gaussian, but NB
  // should still beat a majority-class baseline comfortably.
  EXPECT_GT(*accuracy, 0.6);
}

TEST(NaiveBayesTest, OptionValidation) {
  Dataset data = GaussianBlobs();
  NaiveBayesOptions options;
  options.laplace_alpha = -1.0;
  NaiveBayesClassifier bad_alpha(options);
  EXPECT_FALSE(bad_alpha.Fit(data).ok());
  options = NaiveBayesOptions{};
  options.variance_floor = 0.0;
  NaiveBayesClassifier bad_floor(options);
  EXPECT_FALSE(bad_floor.Fit(data).ok());
}

}  // namespace
}  // namespace dmt::classify
