#include "classify/knn.h"

#include <gtest/gtest.h>

#include "core/rng.h"
#include "eval/cross_validation.h"
#include "eval/metrics.h"
#include "gen/mixture.h"

namespace dmt::classify {
namespace {

using core::Dataset;
using core::DatasetBuilder;
using core::PointSet;

/// Labelled dataset from a 2-cluster Gaussian mixture. Centers sit on a
/// fixed grid so datasets drawn with different seeds share geometry.
Dataset MixtureDataset(uint64_t seed, size_t per_cluster = 100) {
  gen::GaussianMixtureParams params;
  params.num_clusters = 2;
  params.points_per_cluster = per_cluster;
  params.cluster_stddev = 1.0;
  params.placement = gen::CenterPlacement::kGrid;
  params.spread = 30.0;
  auto data = gen::GenerateGaussianMixture(params, seed);
  EXPECT_TRUE(data.ok());
  DatasetBuilder builder;
  std::vector<double> x, y;
  for (size_t i = 0; i < data->points.size(); ++i) {
    x.push_back(data->points.point(i)[0]);
    y.push_back(data->points.point(i)[1]);
  }
  builder.AddNumericColumn("x", std::move(x))
      .AddNumericColumn("y", std::move(y))
      .SetLabels(std::vector<uint32_t>(data->labels.begin(),
                                       data->labels.end()),
                 {"c0", "c1"});
  auto result = builder.Build();
  EXPECT_TRUE(result.ok());
  return std::move(result).value();
}

TEST(KnnTest, ClassifiesSeparatedClusters) {
  Dataset train = MixtureDataset(1);
  Dataset test = MixtureDataset(2);
  KnnClassifier knn;
  ASSERT_TRUE(knn.Fit(train).ok());
  auto predictions = knn.PredictAll(test);
  ASSERT_TRUE(predictions.ok());
  std::vector<uint32_t> truth(test.labels().begin(), test.labels().end());
  auto accuracy = eval::Accuracy(truth, *predictions);
  ASSERT_TRUE(accuracy.ok());
  EXPECT_GT(*accuracy, 0.99);
}

TEST(KnnTest, KdTreeAndBruteForceAgree) {
  Dataset train = MixtureDataset(3);
  Dataset test = MixtureDataset(4, 50);
  KnnOptions tree_options;
  tree_options.search = KnnOptions::Search::kKdTree;
  KnnOptions brute_options;
  brute_options.search = KnnOptions::Search::kBruteForce;
  KnnClassifier with_tree(tree_options);
  KnnClassifier with_brute(brute_options);
  ASSERT_TRUE(with_tree.Fit(train).ok());
  ASSERT_TRUE(with_brute.Fit(train).ok());
  auto a = with_tree.PredictAll(test);
  auto b = with_brute.PredictAll(test);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);
}

TEST(KnnTest, KOneMemorizesTrainingData) {
  Dataset train = MixtureDataset(5);
  KnnOptions options;
  options.k = 1;
  options.standardize = false;
  KnnClassifier knn(options);
  ASSERT_TRUE(knn.Fit(train).ok());
  auto predictions = knn.PredictAll(train);
  ASSERT_TRUE(predictions.ok());
  std::vector<uint32_t> truth(train.labels().begin(), train.labels().end());
  auto accuracy = eval::Accuracy(truth, *predictions);
  EXPECT_DOUBLE_EQ(*accuracy, 1.0);
}

TEST(KnnTest, StandardizationMattersForSkewedScales) {
  // Informative dimension tiny, noise dimension huge: without
  // standardization the noise dominates Euclidean distance.
  DatasetBuilder train_builder, test_builder;
  core::Rng rng(17);
  std::vector<double> info_train, noise_train, info_test, noise_test;
  std::vector<uint32_t> labels_train, labels_test;
  for (int i = 0; i < 200; ++i) {
    uint32_t label = i % 2;
    double informative = label == 0 ? 0.0 : 0.001;
    (i < 100 ? info_train : info_test)
        .push_back(informative + rng.Normal(0.0, 0.0001));
    (i < 100 ? noise_train : noise_test)
        .push_back(rng.Normal(0.0, 1000.0));
    (i < 100 ? labels_train : labels_test).push_back(label);
  }
  train_builder.AddNumericColumn("info", std::move(info_train))
      .AddNumericColumn("noise", std::move(noise_train))
      .SetLabels(std::move(labels_train), {"a", "b"});
  test_builder.AddNumericColumn("info", std::move(info_test))
      .AddNumericColumn("noise", std::move(noise_test))
      .SetLabels(std::move(labels_test), {"a", "b"});
  auto train = train_builder.Build();
  auto test = test_builder.Build();
  ASSERT_TRUE(train.ok());
  ASSERT_TRUE(test.ok());

  KnnOptions raw_options;
  raw_options.standardize = false;
  KnnOptions std_options;
  std_options.standardize = true;
  KnnClassifier raw(raw_options), standardized(std_options);
  ASSERT_TRUE(raw.Fit(*train).ok());
  ASSERT_TRUE(standardized.Fit(*train).ok());
  std::vector<uint32_t> truth(test->labels().begin(),
                              test->labels().end());
  auto raw_acc = eval::Accuracy(truth, *raw.PredictAll(*test));
  auto std_acc = eval::Accuracy(truth, *standardized.PredictAll(*test));
  EXPECT_GT(*std_acc, 0.95);
  EXPECT_GT(*std_acc, *raw_acc);
}

TEST(KnnTest, CategoricalAttributesOneHotEncoded) {
  DatasetBuilder builder;
  builder.AddCategoricalColumn("c", {0, 0, 0, 1, 1, 1}, {"x", "y"})
      .SetLabels({0, 0, 0, 1, 1, 1}, {"a", "b"});
  auto data = builder.Build();
  ASSERT_TRUE(data.ok());
  KnnOptions options;
  options.k = 3;
  KnnClassifier knn(options);
  ASSERT_TRUE(knn.Fit(*data).ok());
  auto predictions = knn.PredictAll(*data);
  ASSERT_TRUE(predictions.ok());
  for (size_t row = 0; row < data->num_rows(); ++row) {
    EXPECT_EQ((*predictions)[row], data->Label(row));
  }
}

TEST(KnnTest, PredictBeforeFitFails) {
  Dataset data = MixtureDataset(6, 10);
  KnnClassifier knn;
  EXPECT_FALSE(knn.PredictAll(data).ok());
}

TEST(KnnTest, InvalidKRejected) {
  Dataset data = MixtureDataset(7, 10);
  KnnOptions options;
  options.k = 0;
  KnnClassifier knn(options);
  EXPECT_FALSE(knn.Fit(data).ok());
}

TEST(KnnTest, DistanceWeightedVotingBreaksTies) {
  // Two training points of class a very close, two of class b far away;
  // k=4 uniform voting ties (first class wins by id), weighted voting
  // must prefer the close class even when it has fewer members nearby.
  DatasetBuilder builder;
  builder.AddNumericColumn("x", {0.1, -0.1, 5.0, 5.2, 5.4})
      .SetLabels({0, 0, 1, 1, 1}, {"near", "far"});
  auto train = builder.Build();
  ASSERT_TRUE(train.ok());
  DatasetBuilder query_builder;
  query_builder.AddNumericColumn("x", {0.0}).SetLabels({0},
                                                       {"near", "far"});
  auto query = query_builder.Build();
  ASSERT_TRUE(query.ok());
  KnnOptions options;
  options.k = 5;  // all points vote: 3 far vs 2 near
  options.standardize = false;
  options.distance_weighted = true;
  KnnClassifier weighted(options);
  ASSERT_TRUE(weighted.Fit(*train).ok());
  auto prediction = weighted.PredictAll(*query);
  ASSERT_TRUE(prediction.ok());
  EXPECT_EQ((*prediction)[0], 0u);  // near class wins on weight
  options.distance_weighted = false;
  KnnClassifier uniform(options);
  ASSERT_TRUE(uniform.Fit(*train).ok());
  auto uniform_prediction = uniform.PredictAll(*query);
  ASSERT_TRUE(uniform_prediction.ok());
  EXPECT_EQ((*uniform_prediction)[0], 1u);  // majority wins uniformly
}

TEST(KnnTest, KnnPredictPointHelper) {
  PointSet train(1);
  train.Add(std::vector<double>{0.0});
  train.Add(std::vector<double>{1.0});
  train.Add(std::vector<double>{10.0});
  std::vector<uint32_t> labels = {0, 0, 1};
  EXPECT_EQ(KnnPredictPoint(train, labels, 2,
                            std::vector<double>{0.5}, 2),
            0u);
  EXPECT_EQ(KnnPredictPoint(train, labels, 2,
                            std::vector<double>{9.0}, 1),
            1u);
  core::KdTree index(train);
  EXPECT_EQ(KnnPredictPoint(train, labels, 2, std::vector<double>{9.0}, 1,
                            &index),
            1u);
}

}  // namespace
}  // namespace dmt::classify
