#include "core/kd_tree.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/distance.h"
#include "core/rng.h"

namespace dmt::core {
namespace {

PointSet RandomPoints(size_t n, size_t dim, uint64_t seed) {
  Rng rng(seed);
  PointSet points(dim);
  std::vector<double> buffer(dim);
  for (size_t i = 0; i < n; ++i) {
    for (size_t d = 0; d < dim; ++d) {
      buffer[d] = rng.UniformDouble(-10.0, 10.0);
    }
    points.Add(buffer);
  }
  return points;
}

std::vector<std::pair<double, uint32_t>> BruteKNearest(
    const PointSet& points, std::span<const double> query, size_t k) {
  std::vector<std::pair<double, uint32_t>> all;
  for (uint32_t i = 0; i < points.size(); ++i) {
    all.emplace_back(SquaredEuclideanDistance(query, points.point(i)), i);
  }
  std::sort(all.begin(), all.end());
  if (all.size() > k) all.resize(k);
  return all;
}

TEST(KdTreeTest, KNearestMatchesBruteForce) {
  for (size_t dim : {1u, 2u, 5u}) {
    PointSet points = RandomPoints(300, dim, 10 + dim);
    KdTree tree(points, 8);
    Rng rng(99);
    std::vector<double> query(dim);
    for (int trial = 0; trial < 20; ++trial) {
      for (size_t d = 0; d < dim; ++d) {
        query[d] = rng.UniformDouble(-12.0, 12.0);
      }
      for (size_t k : {1u, 5u, 17u}) {
        auto expected = BruteKNearest(points, query, k);
        auto actual = tree.KNearest(query, k);
        ASSERT_EQ(actual.size(), expected.size());
        for (size_t i = 0; i < expected.size(); ++i) {
          EXPECT_DOUBLE_EQ(actual[i].first, expected[i].first)
              << "dim " << dim << " trial " << trial << " k " << k;
        }
      }
    }
  }
}

TEST(KdTreeTest, RadiusSearchMatchesBruteForce) {
  PointSet points = RandomPoints(400, 3, 77);
  KdTree tree(points, 4);
  Rng rng(5);
  std::vector<double> query(3);
  for (int trial = 0; trial < 20; ++trial) {
    for (size_t d = 0; d < 3; ++d) query[d] = rng.UniformDouble(-10, 10);
    double radius = rng.UniformDouble(0.5, 6.0);
    auto actual = tree.RadiusSearch(query, radius);
    std::vector<uint32_t> expected;
    for (uint32_t i = 0; i < points.size(); ++i) {
      if (SquaredEuclideanDistance(query, points.point(i)) <=
          radius * radius) {
        expected.push_back(i);
      }
    }
    EXPECT_EQ(actual, expected) << "trial " << trial;
  }
}

TEST(KdTreeTest, KLargerThanSetReturnsAll) {
  PointSet points = RandomPoints(7, 2, 3);
  KdTree tree(points);
  std::vector<double> query = {0.0, 0.0};
  auto result = tree.KNearest(query, 100);
  EXPECT_EQ(result.size(), 7u);
}

TEST(KdTreeTest, KZeroReturnsNothing) {
  PointSet points = RandomPoints(7, 2, 3);
  KdTree tree(points);
  std::vector<double> query = {0.0, 0.0};
  EXPECT_TRUE(tree.KNearest(query, 0).empty());
}

TEST(KdTreeTest, EmptyPointSet) {
  PointSet points(2);
  KdTree tree(points);
  std::vector<double> query = {0.0, 0.0};
  EXPECT_TRUE(tree.KNearest(query, 3).empty());
  EXPECT_TRUE(tree.RadiusSearch(query, 1.0).empty());
}

TEST(KdTreeTest, DuplicatePointsAllFound) {
  PointSet points(2);
  for (int i = 0; i < 10; ++i) {
    points.Add(std::vector<double>{1.0, 1.0});
  }
  KdTree tree(points, 2);
  std::vector<double> query = {1.0, 1.0};
  auto knn = tree.KNearest(query, 10);
  EXPECT_EQ(knn.size(), 10u);
  for (const auto& [d, i] : knn) EXPECT_DOUBLE_EQ(d, 0.0);
  auto radius = tree.RadiusSearch(query, 0.0);
  EXPECT_EQ(radius.size(), 10u);
}

TEST(KdTreeTest, ExactPointFoundFirst) {
  PointSet points = RandomPoints(100, 4, 123);
  KdTree tree(points);
  for (uint32_t i = 0; i < points.size(); i += 13) {
    auto knn = tree.KNearest(points.point(i), 1);
    ASSERT_EQ(knn.size(), 1u);
    EXPECT_DOUBLE_EQ(knn[0].first, 0.0);
  }
}

TEST(KdTreeTest, LeafSizeOneBuildsDeepTree) {
  PointSet points = RandomPoints(64, 2, 8);
  KdTree shallow(points, 64);
  KdTree deep(points, 1);
  EXPECT_EQ(shallow.num_nodes(), 1u);
  EXPECT_GT(deep.num_nodes(), 32u);
  // Same answers regardless of structure.
  std::vector<double> query = {0.5, -0.5};
  auto a = shallow.KNearest(query, 5);
  auto b = deep.KNearest(query, 5);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].first, b[i].first);
  }
}

TEST(KdTreeTest, RadiusZeroFindsOnlyExactMatches) {
  PointSet points(1);
  points.Add(std::vector<double>{1.0});
  points.Add(std::vector<double>{2.0});
  KdTree tree(points);
  std::vector<double> query = {1.0};
  auto hits = tree.RadiusSearch(query, 0.0);
  EXPECT_EQ(hits, (std::vector<uint32_t>{0}));
}

}  // namespace
}  // namespace dmt::core
