// Differential suite for the tree builders' determinism contract (the
// tree-pillar analogue of the assoc/cluster/seq parallel_diff tests): the
// presorted and naive split-search engines grow bit-identical trees, any
// thread count reproduces the serial tree node for node — structure,
// thresholds, leaf histograms — and the split-scan work counters are
// invariant across engines and thread counts.
#include <gtest/gtest.h>

#include <vector>

#include "core/dataset.h"
#include "gen/agrawal.h"
#include "obs/metrics.h"
#include "tree/builder.h"
#include "tree/sliq.h"

namespace dmt::tree {
namespace {

using core::Dataset;

Dataset MakeAgrawal(int function, size_t records) {
  gen::AgrawalParams params;
  params.function = function;
  params.num_records = records;
  params.perturbation = 0.05;
  auto data = gen::GenerateAgrawal(params, 1993);
  EXPECT_TRUE(data.ok());
  return *std::move(data);
}

/// A tie-heavy mixed dataset: the numeric columns take only a handful of
/// distinct values, so almost every adjacent pair in a sorted order is a
/// tie and the sort-order tie-breaking is load-bearing.
Dataset MakeTieHeavy(size_t records) {
  std::vector<double> coarse(records);
  std::vector<double> binary(records);
  std::vector<uint32_t> color(records);
  std::vector<uint32_t> labels(records);
  for (size_t i = 0; i < records; ++i) {
    // Deterministic pseudo-pattern with plenty of duplicated values.
    coarse[i] = static_cast<double>((i * 7 + 3) % 5);
    binary[i] = static_cast<double>((i / 3) % 2);
    color[i] = static_cast<uint32_t>((i * 11) % 3);
    labels[i] = static_cast<uint32_t>(((i * 7 + 3) % 5 < 2) ^ (i % 7 == 0));
  }
  auto data = core::DatasetBuilder()
                  .AddNumericColumn("coarse", std::move(coarse))
                  .AddNumericColumn("binary", std::move(binary))
                  .AddCategoricalColumn("color", std::move(color),
                                        {"red", "green", "blue"})
                  .SetLabels(std::move(labels), {"no", "yes"})
                  .Build();
  EXPECT_TRUE(data.ok());
  return *std::move(data);
}

void ExpectSameTree(const DecisionTree& a, const DecisionTree& b) {
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  for (size_t i = 0; i < a.num_nodes(); ++i) {
    const TreeNode& x = a.node(i);
    const TreeNode& y = b.node(i);
    EXPECT_EQ(x.is_leaf, y.is_leaf) << "node " << i;
    EXPECT_EQ(x.majority_class, y.majority_class) << "node " << i;
    EXPECT_EQ(x.class_counts, y.class_counts) << "node " << i;
    EXPECT_EQ(x.children, y.children) << "node " << i;
    if (!x.is_leaf) {
      EXPECT_EQ(x.kind, y.kind) << "node " << i;
      EXPECT_EQ(x.attribute, y.attribute) << "node " << i;
      // Exact comparisons on purpose: the contract is bit-identical
      // thresholds, not merely close ones.
      EXPECT_EQ(x.threshold, y.threshold) << "node " << i;
      EXPECT_EQ(x.category, y.category) << "node " << i;
    }
  }
}

struct Built {
  DecisionTree tree;
  TreeBuildStats stats;
};

Built BuildGreedy(const Dataset& data, TreeOptions options) {
  Built out;
  auto tree = BuildTree(data, options, &out.stats);
  EXPECT_TRUE(tree.ok()) << tree.status().ToString();
  out.tree = *std::move(tree);
  return out;
}

TEST(TreeParallelDiffTest, NaiveMatchesPresortedAcrossCriteria) {
  Dataset data = MakeAgrawal(2, 3000);
  for (SplitCriterion criterion :
       {SplitCriterion::kGini, SplitCriterion::kInformationGain,
        SplitCriterion::kGainRatio}) {
    for (CategoricalSplitStyle style : {CategoricalSplitStyle::kMultiway,
                                        CategoricalSplitStyle::kBinary}) {
      TreeOptions options;
      options.criterion = criterion;
      options.categorical_style = style;
      options.split_search = SplitSearch::kNaive;
      Built naive = BuildGreedy(data, options);
      options.split_search = SplitSearch::kPresorted;
      Built presorted = BuildGreedy(data, options);
      ExpectSameTree(naive.tree, presorted.tree);
      EXPECT_EQ(naive.stats.split_scan_rows, presorted.stats.split_scan_rows);
      EXPECT_GT(naive.stats.split_scan_rows, 0u);
    }
  }
}

TEST(TreeParallelDiffTest, ThreadedGreedyMatchesSerial) {
  Dataset data = MakeAgrawal(5, 3000);
  for (SplitSearch engine : {SplitSearch::kNaive, SplitSearch::kPresorted}) {
    TreeOptions options;
    options.criterion = SplitCriterion::kGini;
    options.categorical_style = CategoricalSplitStyle::kBinary;
    options.split_search = engine;
    options.num_threads = 0;
    Built serial = BuildGreedy(data, options);
    for (size_t threads : {2u, 4u}) {
      options.num_threads = threads;
      Built threaded = BuildGreedy(data, options);
      ExpectSameTree(serial.tree, threaded.tree);
      EXPECT_EQ(serial.stats.split_scan_rows,
                threaded.stats.split_scan_rows);
    }
  }
}

TEST(TreeParallelDiffTest, ThreadedC45MatchesSerial) {
  Dataset data = MakeAgrawal(7, 3000);
  TreeOptions options;  // C4.5 defaults: gain ratio, multiway.
  Built serial = BuildGreedy(data, options);
  for (size_t threads : {2u, 4u}) {
    options.num_threads = threads;
    Built threaded = BuildGreedy(data, options);
    ExpectSameTree(serial.tree, threaded.tree);
    EXPECT_EQ(serial.stats.split_scan_rows, threaded.stats.split_scan_rows);
  }
}

// Regression for the seed's nondeterministic numeric scan: equal attribute
// values used to be ordered arbitrarily by the unstable per-node sort, so
// tie-heavy data could grow different (run-to-run or engine-to-engine)
// trees. The (value, row id) total order pins them down.
TEST(TreeParallelDiffTest, DuplicatedValuesGrowIdenticalTrees) {
  Dataset data = MakeTieHeavy(1200);
  for (SplitCriterion criterion :
       {SplitCriterion::kGini, SplitCriterion::kGainRatio}) {
    TreeOptions options;
    options.criterion = criterion;
    options.categorical_style = CategoricalSplitStyle::kBinary;
    options.split_search = SplitSearch::kNaive;
    Built naive = BuildGreedy(data, options);
    Built naive_again = BuildGreedy(data, options);
    options.split_search = SplitSearch::kPresorted;
    Built presorted = BuildGreedy(data, options);
    options.num_threads = 4;
    Built threaded = BuildGreedy(data, options);
    ExpectSameTree(naive.tree, naive_again.tree);
    ExpectSameTree(naive.tree, presorted.tree);
    ExpectSameTree(naive.tree, threaded.tree);
    EXPECT_EQ(naive.stats.split_scan_rows, presorted.stats.split_scan_rows);
    EXPECT_EQ(naive.stats.split_scan_rows, threaded.stats.split_scan_rows);
  }
}

TEST(TreeParallelDiffTest, ThreadedSliqMatchesSerial) {
  Dataset data = MakeAgrawal(2, 3000);
  SliqOptions options;
  TreeBuildStats serial_stats;
  auto serial = BuildSliq(data, options, &serial_stats);
  ASSERT_TRUE(serial.ok());
  for (size_t threads : {2u, 4u}) {
    options.num_threads = threads;
    TreeBuildStats threaded_stats;
    auto threaded = BuildSliq(data, options, &threaded_stats);
    ASSERT_TRUE(threaded.ok());
    ExpectSameTree(*serial, *threaded);
    EXPECT_EQ(serial_stats.split_scan_rows, threaded_stats.split_scan_rows);
    EXPECT_GT(serial_stats.split_scan_rows, 0u);
  }
}

// SLIQ grows the same splits as the recursive CART engines level by level;
// its gini/binary trees must match BuildCart's wherever both grow (SLIQ is
// breadth-first, so node numbering differs — compare predictions and
// sizes, which PR-seeded sliq_test already covers; here we pin the work
// counter's engine-invariance instead).
TEST(TreeParallelDiffTest, StatsAreDeterministicAcrossRuns) {
  Dataset data = MakeAgrawal(3, 2000);
  TreeOptions options;
  options.criterion = SplitCriterion::kGini;
  options.categorical_style = CategoricalSplitStyle::kBinary;
  Built a = BuildGreedy(data, options);
  Built b = BuildGreedy(data, options);
  EXPECT_EQ(a.stats.split_scan_rows, b.stats.split_scan_rows);
  TreeBuildStats sliq_a;
  TreeBuildStats sliq_b;
  ASSERT_TRUE(BuildSliq(data, SliqOptions{}, &sliq_a).ok());
  ASSERT_TRUE(BuildSliq(data, SliqOptions{}, &sliq_b).ok());
  EXPECT_EQ(sliq_a.split_scan_rows, sliq_b.split_scan_rows);
}

TEST(RegistryParallelDiffTest, CounterTotalsIdenticalAcrossThreadCounts) {
  // Both tree builders publish split-scan work through the registry; the
  // totals must be bit-identical at every thread count, including more
  // threads than attributes (7 against the tie-heavy 3-attribute set,
  // whose split search has only 3 top-level tasks per node).
  Dataset data = MakeAgrawal(2, 2000);
  Dataset tiny = MakeTieHeavy(60);
  std::vector<std::pair<std::string, uint64_t>> baseline;
  for (size_t threads : {0u, 1u, 2u, 7u}) {
    obs::Registry::Global().Reset();
    TreeOptions options;
    options.criterion = SplitCriterion::kGini;
    options.categorical_style = CategoricalSplitStyle::kBinary;
    options.num_threads = threads;
    TreeBuildStats greedy_stats;
    ASSERT_TRUE(BuildTree(data, options, &greedy_stats).ok());
    SliqOptions sliq_options;
    sliq_options.num_threads = threads;
    TreeBuildStats sliq_stats;
    ASSERT_TRUE(BuildSliq(data, sliq_options, &sliq_stats).ok());
    options.num_threads = threads;
    TreeBuildStats tiny_stats;
    ASSERT_TRUE(BuildTree(tiny, options, &tiny_stats).ok());
    auto snapshot = obs::Registry::Global().CounterSnapshot();
    if (threads == 0) {
      baseline = snapshot;
      EXPECT_FALSE(baseline.empty());
    } else {
      EXPECT_EQ(snapshot, baseline)
          << "registry totals diverged at num_threads=" << threads;
    }
  }
}

}  // namespace
}  // namespace dmt::tree
