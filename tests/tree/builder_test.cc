#include "tree/builder.h"

#include <gtest/gtest.h>

#include "eval/cross_validation.h"
#include "eval/metrics.h"
#include "gen/agrawal.h"

namespace dmt::tree {
namespace {

using core::Dataset;
using core::DatasetBuilder;

/// The classic "play tennis" dataset (Quinlan): 14 rows, 4 categorical
/// attributes.
Dataset PlayTennis() {
  DatasetBuilder builder;
  builder.AddCategoricalColumn(
      "outlook", {0, 0, 1, 2, 2, 2, 1, 0, 0, 2, 0, 1, 1, 2},
      {"sunny", "overcast", "rain"});
  builder.AddCategoricalColumn(
      "temperature", {0, 0, 0, 1, 2, 2, 2, 1, 2, 1, 1, 1, 0, 1},
      {"hot", "mild", "cool"});
  builder.AddCategoricalColumn(
      "humidity", {0, 0, 0, 0, 1, 1, 1, 0, 1, 1, 1, 0, 1, 0},
      {"high", "normal"});
  builder.AddCategoricalColumn(
      "wind", {0, 1, 0, 0, 0, 1, 1, 0, 0, 0, 1, 1, 0, 1},
      {"weak", "strong"});
  builder.SetLabels({1, 1, 0, 0, 0, 1, 0, 1, 0, 0, 0, 0, 0, 1},
                    {"play", "dont_play"});
  auto result = builder.Build();
  EXPECT_TRUE(result.ok());
  return std::move(result).value();
}

TEST(BuilderTest, Id3LearnsPlayTennisPerfectly) {
  Dataset data = PlayTennis();
  auto tree = BuildId3(data);
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();
  auto predictions = tree->PredictAll(data);
  for (size_t row = 0; row < data.num_rows(); ++row) {
    EXPECT_EQ(predictions[row], data.Label(row)) << "row " << row;
  }
  // The canonical ID3 tree for this data splits on outlook at the root.
  EXPECT_FALSE(tree->root().is_leaf);
  EXPECT_EQ(tree->node(0).attribute, 0u);
  EXPECT_EQ(tree->node(0).kind, SplitKind::kCategoricalMultiway);
}

TEST(BuilderTest, Id3RejectsNumericAttributes) {
  DatasetBuilder builder;
  builder.AddNumericColumn("x", {1.0, 2.0}).SetLabels({0, 1}, {"a", "b"});
  auto data = builder.Build();
  ASSERT_TRUE(data.ok());
  auto tree = BuildId3(*data);
  EXPECT_FALSE(tree.ok());
  EXPECT_EQ(tree.status().code(), core::StatusCode::kInvalidArgument);
}

TEST(BuilderTest, C45HandlesNumericThresholds) {
  // Single numeric attribute, threshold at 5: perfectly separable.
  DatasetBuilder builder;
  builder.AddNumericColumn("x", {1, 2, 3, 4, 6, 7, 8, 9})
      .SetLabels({0, 0, 0, 0, 1, 1, 1, 1}, {"low", "high"});
  auto data = builder.Build();
  ASSERT_TRUE(data.ok());
  auto tree = BuildC45(*data);
  ASSERT_TRUE(tree.ok());
  EXPECT_FALSE(tree->root().is_leaf);
  EXPECT_EQ(tree->root().kind, SplitKind::kNumericThreshold);
  EXPECT_NEAR(tree->root().threshold, 5.0, 1e-9);
  EXPECT_EQ(tree->NumLeaves(), 2u);
  auto predictions = tree->PredictAll(*data);
  for (size_t row = 0; row < data->num_rows(); ++row) {
    EXPECT_EQ(predictions[row], data->Label(row));
  }
}

TEST(BuilderTest, CartUsesBinarySplits) {
  Dataset data = PlayTennis();
  auto tree = BuildCart(data);
  ASSERT_TRUE(tree.ok());
  // Every internal node is binary.
  for (size_t i = 0; i < tree->num_nodes(); ++i) {
    if (!tree->node(i).is_leaf) {
      EXPECT_EQ(tree->node(i).children.size(), 2u);
      EXPECT_NE(tree->node(i).kind, SplitKind::kCategoricalMultiway);
    }
  }
  // Consistent on training data.
  auto predictions = tree->PredictAll(data);
  for (size_t row = 0; row < data.num_rows(); ++row) {
    EXPECT_EQ(predictions[row], data.Label(row));
  }
}

TEST(BuilderTest, PureNodeBecomesLeafImmediately) {
  DatasetBuilder builder;
  builder.AddNumericColumn("x", {1, 2, 3}).SetLabels({0, 0, 0}, {"only"});
  auto data = builder.Build();
  ASSERT_TRUE(data.ok());
  auto tree = BuildC45(*data);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->num_nodes(), 1u);
  EXPECT_TRUE(tree->root().is_leaf);
}

TEST(BuilderTest, MaxDepthCapsGrowth) {
  gen::AgrawalParams params;
  params.function = 2;
  params.num_records = 2000;
  auto data = gen::GenerateAgrawal(params, 5);
  ASSERT_TRUE(data.ok());
  TreeOptions options;
  options.max_depth = 3;
  auto tree = BuildC45(*data, options);
  ASSERT_TRUE(tree.ok());
  EXPECT_LE(tree->Depth(), 3u);
}

TEST(BuilderTest, MinSamplesSplitStopsGrowth) {
  gen::AgrawalParams params;
  params.function = 2;
  params.num_records = 500;
  auto data = gen::GenerateAgrawal(params, 6);
  ASSERT_TRUE(data.ok());
  TreeOptions loose, strict;
  strict.min_samples_split = 100;
  auto big = BuildCart(*data, loose);
  auto small = BuildCart(*data, strict);
  ASSERT_TRUE(big.ok());
  ASSERT_TRUE(small.ok());
  EXPECT_LT(small->num_nodes(), big->num_nodes());
}

TEST(BuilderTest, LearnsAgrawalFunction1WellOutOfSample) {
  gen::AgrawalParams params;
  params.function = 1;  // pure age thresholds: trees should nail it
  params.num_records = 4000;
  auto data = gen::GenerateAgrawal(params, 7);
  ASSERT_TRUE(data.ok());
  auto split = eval::StratifiedTrainTestSplit(data->labels(), 0.25, 11);
  ASSERT_TRUE(split.ok());
  Dataset train, test;
  eval::MaterializeSplit(*data, *split, &train, &test);
  for (auto build : {BuildC45, BuildCart}) {
    auto tree = build(train, TreeOptions{});
    ASSERT_TRUE(tree.ok());
    auto predictions = tree->PredictAll(test);
    std::vector<uint32_t> truth(test.labels().begin(), test.labels().end());
    auto accuracy = eval::Accuracy(truth, predictions);
    ASSERT_TRUE(accuracy.ok());
    EXPECT_GT(*accuracy, 0.97);
  }
}

TEST(BuilderTest, EmptyDatasetRejected) {
  DatasetBuilder builder;
  builder.AddNumericColumn("x", {}).SetLabels({}, {"a"});
  auto data = builder.Build();
  ASSERT_TRUE(data.ok());
  EXPECT_FALSE(BuildC45(*data).ok());
}

TEST(BuilderTest, OptionValidation) {
  Dataset data = PlayTennis();
  TreeOptions options;
  options.min_samples_split = 1;
  EXPECT_FALSE(BuildTree(data, options).ok());
  options = TreeOptions{};
  options.min_gain = -1.0;
  EXPECT_FALSE(BuildTree(data, options).ok());
}

TEST(BuilderTest, TextExportMentionsAttributesAndClasses) {
  Dataset data = PlayTennis();
  auto tree = BuildId3(data);
  ASSERT_TRUE(tree.ok());
  std::string text = tree->ToText();
  EXPECT_NE(text.find("outlook"), std::string::npos);
  EXPECT_NE(text.find("play"), std::string::npos);
  EXPECT_NE(text.find("sunny"), std::string::npos);
}

TEST(BuilderTest, DotExportIsWellFormed) {
  Dataset data = PlayTennis();
  auto tree = BuildCart(data);
  ASSERT_TRUE(tree.ok());
  std::string dot = tree->ToDot();
  EXPECT_EQ(dot.rfind("digraph", 0), 0u);
  EXPECT_NE(dot.find("->"), std::string::npos);
  EXPECT_NE(dot.find("}"), std::string::npos);
}

TEST(BuilderTest, DepthAndLeafCountsConsistent) {
  Dataset data = PlayTennis();
  auto tree = BuildId3(data);
  ASSERT_TRUE(tree.ok());
  EXPECT_GE(tree->Depth(), 1u);
  EXPECT_GE(tree->NumLeaves(), 2u);
  EXPECT_LE(tree->NumLeaves(), tree->num_nodes());
}

}  // namespace
}  // namespace dmt::tree
