#include "tree/pruning.h"

#include <gtest/gtest.h>

#include "eval/cross_validation.h"
#include "eval/metrics.h"
#include "gen/agrawal.h"
#include "tree/builder.h"

namespace dmt::tree {
namespace {

using core::Dataset;

Dataset NoisyAgrawal(int function, size_t records, double noise,
                     uint64_t seed) {
  gen::AgrawalParams params;
  params.function = function;
  params.num_records = records;
  params.label_noise = noise;
  auto data = gen::GenerateAgrawal(params, seed);
  EXPECT_TRUE(data.ok());
  return std::move(data).value();
}

TEST(PruningTest, InverseNormalCdfKnownValues) {
  EXPECT_NEAR(InverseNormalCdf(0.5), 0.0, 1e-9);
  EXPECT_NEAR(InverseNormalCdf(0.975), 1.959964, 1e-5);
  EXPECT_NEAR(InverseNormalCdf(0.75), 0.6744898, 1e-6);
  EXPECT_NEAR(InverseNormalCdf(0.025), -1.959964, 1e-5);
  EXPECT_NEAR(InverseNormalCdf(0.999), 3.090232, 1e-5);
}

TEST(PruningTest, PessimisticErrorRateExceedsObserved) {
  // The upper confidence bound is always >= the observed rate.
  for (double errors : {0.0, 1.0, 5.0}) {
    for (double n : {10.0, 50.0, 200.0}) {
      double bound = PessimisticErrorRate(errors, n, 0.25);
      EXPECT_GE(bound, errors / n);
      EXPECT_LE(bound, 1.0);
    }
  }
}

TEST(PruningTest, PessimisticErrorShrinksWithSampleSize) {
  // Same observed rate, more data -> tighter bound.
  double small = PessimisticErrorRate(2, 10, 0.25);
  double large = PessimisticErrorRate(20, 100, 0.25);
  EXPECT_GT(small, large);
}

TEST(PruningTest, PessimisticPruneShrinksNoisyTree) {
  Dataset data = NoisyAgrawal(1, 2000, 0.15, 21);
  auto tree = BuildC45(data);
  ASSERT_TRUE(tree.ok());
  size_t before = tree->NumLeaves();
  ASSERT_TRUE(PessimisticPrune(&*tree).ok());
  size_t after = tree->NumLeaves();
  EXPECT_LT(after, before);
  EXPECT_GE(after, 1u);
}

TEST(PruningTest, PessimisticPruneImprovesTestAccuracyOnNoise) {
  Dataset data = NoisyAgrawal(2, 4000, 0.2, 23);
  auto split = eval::StratifiedTrainTestSplit(data.labels(), 0.3, 5);
  ASSERT_TRUE(split.ok());
  Dataset train, test;
  eval::MaterializeSplit(data, *split, &train, &test);
  auto tree = BuildC45(train);
  ASSERT_TRUE(tree.ok());
  std::vector<uint32_t> truth(test.labels().begin(), test.labels().end());
  auto before = eval::Accuracy(truth, tree->PredictAll(test));
  ASSERT_TRUE(PessimisticPrune(&*tree).ok());
  auto after = eval::Accuracy(truth, tree->PredictAll(test));
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(after.ok());
  // Pruning must not hurt much and typically helps on noisy data.
  EXPECT_GE(*after, *before - 0.01);
}

TEST(PruningTest, PessimisticPruneValidatesConfidence) {
  Dataset data = NoisyAgrawal(1, 100, 0.0, 3);
  auto tree = BuildC45(data);
  ASSERT_TRUE(tree.ok());
  PessimisticPruneOptions options;
  options.confidence = 0.0;
  EXPECT_FALSE(PessimisticPrune(&*tree, options).ok());
  options.confidence = 0.7;
  EXPECT_FALSE(PessimisticPrune(&*tree, options).ok());
}

TEST(PruningTest, CostComplexityZeroAlphaPrunesOnlyZeroGainLinks) {
  Dataset data = NoisyAgrawal(1, 1000, 0.0, 7);
  auto tree = BuildCart(data);
  ASSERT_TRUE(tree.ok());
  DecisionTree pruned = *tree;
  CostComplexityPrune(&pruned, 0.0);
  // Collapsing zero-gain links never increases training error.
  auto before = tree->PredictAll(data);
  auto after = pruned.PredictAll(data);
  size_t before_errors = 0, after_errors = 0;
  for (size_t row = 0; row < data.num_rows(); ++row) {
    before_errors += before[row] != data.Label(row);
    after_errors += after[row] != data.Label(row);
  }
  EXPECT_EQ(before_errors, after_errors);
  EXPECT_LE(pruned.NumLeaves(), tree->NumLeaves());
}

TEST(PruningTest, CostComplexityLargeAlphaYieldsStump) {
  Dataset data = NoisyAgrawal(2, 1000, 0.1, 9);
  auto tree = BuildCart(data);
  ASSERT_TRUE(tree.ok());
  CostComplexityPrune(&*tree, 1.0);  // alpha 1: any split is too expensive
  EXPECT_EQ(tree->NumLeaves(), 1u);
  EXPECT_TRUE(tree->root().is_leaf);
}

TEST(PruningTest, AlphaSequenceIsMonotone) {
  Dataset data = NoisyAgrawal(3, 1500, 0.1, 13);
  auto tree = BuildCart(data);
  ASSERT_TRUE(tree.ok());
  auto alphas = CostComplexityAlphas(*tree);
  ASSERT_FALSE(alphas.empty());
  for (size_t i = 1; i < alphas.size(); ++i) {
    EXPECT_GE(alphas[i], alphas[i - 1]);
  }
  EXPECT_GE(alphas.front(), 0.0);
}

TEST(PruningTest, LargerAlphaNeverGrowsTheTree) {
  Dataset data = NoisyAgrawal(2, 1500, 0.15, 17);
  auto tree = BuildCart(data);
  ASSERT_TRUE(tree.ok());
  size_t previous_leaves = SIZE_MAX;
  for (double alpha : {0.0, 0.001, 0.01, 0.05, 0.5}) {
    DecisionTree pruned = *tree;
    CostComplexityPrune(&pruned, alpha);
    EXPECT_LE(pruned.NumLeaves(), previous_leaves);
    previous_leaves = pruned.NumLeaves();
  }
}

TEST(PruningTest, SelectAlphaByValidationPicksReasonableAlpha) {
  Dataset data = NoisyAgrawal(2, 3000, 0.2, 19);
  auto split = eval::StratifiedTrainTestSplit(data.labels(), 0.3, 3);
  ASSERT_TRUE(split.ok());
  Dataset train, validation;
  eval::MaterializeSplit(data, *split, &train, &validation);
  auto tree = BuildCart(train);
  ASSERT_TRUE(tree.ok());
  auto alpha = SelectAlphaByValidation(*tree, validation);
  ASSERT_TRUE(alpha.ok());
  EXPECT_GE(*alpha, 0.0);
  // The selected alpha's tree is at least as accurate on validation as the
  // unpruned tree.
  DecisionTree pruned = *tree;
  CostComplexityPrune(&pruned, *alpha);
  std::vector<uint32_t> truth(validation.labels().begin(),
                              validation.labels().end());
  auto unpruned_acc = eval::Accuracy(truth, tree->PredictAll(validation));
  auto pruned_acc = eval::Accuracy(truth, pruned.PredictAll(validation));
  EXPECT_GE(*pruned_acc + 1e-12, *unpruned_acc);
}

TEST(PruningTest, SelectAlphaRejectsEmptyValidation) {
  Dataset data = NoisyAgrawal(1, 100, 0.0, 2);
  auto tree = BuildCart(data);
  ASSERT_TRUE(tree.ok());
  core::DatasetBuilder builder;
  builder.AddNumericColumn("x", {}).SetLabels({}, {"a"});
  auto empty = builder.Build();
  ASSERT_TRUE(empty.ok());
  EXPECT_FALSE(SelectAlphaByValidation(*tree, *empty).ok());
}

TEST(PruningTest, CompactDropsStrandedNodes) {
  Dataset data = NoisyAgrawal(1, 1000, 0.1, 29);
  auto tree = BuildC45(data);
  ASSERT_TRUE(tree.ok());
  size_t nodes_before = tree->num_nodes();
  ASSERT_TRUE(PessimisticPrune(&*tree).ok());
  // After Compact, the arena holds exactly the reachable nodes.
  size_t reachable = 0;
  std::vector<size_t> stack = {0};
  std::vector<bool> seen(tree->num_nodes(), false);
  while (!stack.empty()) {
    size_t current = stack.back();
    stack.pop_back();
    if (seen[current]) continue;
    seen[current] = true;
    ++reachable;
    for (uint32_t child : tree->node(current).children) {
      stack.push_back(child);
    }
  }
  EXPECT_EQ(reachable, tree->num_nodes());
  EXPECT_LE(tree->num_nodes(), nodes_before);
}

}  // namespace
}  // namespace dmt::tree
