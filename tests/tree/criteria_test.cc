#include "tree/criteria.h"

#include <gtest/gtest.h>

namespace dmt::tree {
namespace {

TEST(CriteriaTest, EntropyPureIsZero) {
  std::vector<uint32_t> counts = {10, 0};
  EXPECT_DOUBLE_EQ(Entropy(counts), 0.0);
}

TEST(CriteriaTest, EntropyBalancedBinaryIsOne) {
  std::vector<uint32_t> counts = {5, 5};
  EXPECT_DOUBLE_EQ(Entropy(counts), 1.0);
}

TEST(CriteriaTest, EntropyUniformFourWayIsTwo) {
  std::vector<uint32_t> counts = {3, 3, 3, 3};
  EXPECT_DOUBLE_EQ(Entropy(counts), 2.0);
}

TEST(CriteriaTest, EntropyEmptyIsZero) {
  std::vector<uint32_t> counts = {0, 0};
  EXPECT_DOUBLE_EQ(Entropy(counts), 0.0);
}

TEST(CriteriaTest, GiniPureIsZero) {
  std::vector<uint32_t> counts = {7, 0, 0};
  EXPECT_DOUBLE_EQ(GiniImpurity(counts), 0.0);
}

TEST(CriteriaTest, GiniBalancedBinaryIsHalf) {
  std::vector<uint32_t> counts = {4, 4};
  EXPECT_DOUBLE_EQ(GiniImpurity(counts), 0.5);
}

TEST(CriteriaTest, PerfectSplitGainEqualsParentEntropy) {
  // Parent 5/5; children pure.
  std::vector<uint32_t> parent = {5, 5};
  std::vector<std::vector<uint32_t>> children = {{5, 0}, {0, 5}};
  EXPECT_DOUBLE_EQ(
      SplitScore(SplitCriterion::kInformationGain, parent, children), 1.0);
  EXPECT_DOUBLE_EQ(SplitScore(SplitCriterion::kGini, parent, children),
                   0.5);
}

TEST(CriteriaTest, UselessSplitHasZeroGain) {
  std::vector<uint32_t> parent = {6, 6};
  std::vector<std::vector<uint32_t>> children = {{3, 3}, {3, 3}};
  EXPECT_NEAR(
      SplitScore(SplitCriterion::kInformationGain, parent, children), 0.0,
      1e-12);
  EXPECT_NEAR(SplitScore(SplitCriterion::kGini, parent, children), 0.0,
              1e-12);
}

TEST(CriteriaTest, GainRatioNormalizesBySplitInfo) {
  // Perfect binary split: gain 1, split info 1 -> ratio 1.
  std::vector<uint32_t> parent = {5, 5};
  std::vector<std::vector<uint32_t>> children = {{5, 0}, {0, 5}};
  EXPECT_DOUBLE_EQ(SplitScore(SplitCriterion::kGainRatio, parent, children),
                   1.0);
}

TEST(CriteriaTest, GainRatioPenalizesManyWaySplits) {
  // 10 singleton children perfectly separate a 5/5 parent, but split info
  // is log2(10): the ratio is far below the raw gain of 1.
  std::vector<uint32_t> parent = {5, 5};
  std::vector<std::vector<uint32_t>> children;
  for (int i = 0; i < 10; ++i) {
    children.push_back(i < 5 ? std::vector<uint32_t>{1, 0}
                             : std::vector<uint32_t>{0, 1});
  }
  double ratio =
      SplitScore(SplitCriterion::kGainRatio, parent, children);
  double gain =
      SplitScore(SplitCriterion::kInformationGain, parent, children);
  EXPECT_DOUBLE_EQ(gain, 1.0);
  EXPECT_NEAR(ratio, 1.0 / SplitInformation(std::vector<uint32_t>(10, 1)),
              1e-12);
  EXPECT_LT(ratio, 0.5);
}

TEST(CriteriaTest, GainRatioZeroWhenSplitInfoVanishes) {
  // Everything in one child: split info 0 -> ratio defined as 0.
  std::vector<uint32_t> parent = {5, 5};
  std::vector<std::vector<uint32_t>> children = {{5, 5}, {0, 0}};
  EXPECT_DOUBLE_EQ(SplitScore(SplitCriterion::kGainRatio, parent, children),
                   0.0);
}

TEST(CriteriaTest, SplitInformationMatchesEntropyOfSizes) {
  std::vector<uint32_t> sizes = {2, 2, 4};
  // H = -(1/4 log 1/4)*2 - 1/2 log 1/2 = 0.5+0.5+0.5 = 1.5
  EXPECT_DOUBLE_EQ(SplitInformation(sizes), 1.5);
}

TEST(CriteriaTest, ImpurityDispatch) {
  std::vector<uint32_t> counts = {1, 1};
  EXPECT_DOUBLE_EQ(Impurity(SplitCriterion::kInformationGain, counts), 1.0);
  EXPECT_DOUBLE_EQ(Impurity(SplitCriterion::kGainRatio, counts), 1.0);
  EXPECT_DOUBLE_EQ(Impurity(SplitCriterion::kGini, counts), 0.5);
}

// The allocation-free scorers are what the boundary sweeps call in the hot
// loop; the builders' bit-identical-trees contract rests on them agreeing
// with SplitScore EXACTLY (==, not nearly) on every histogram.
TEST(CriteriaTest, BinaryScorersMatchSplitScoreBitForBit) {
  // A deterministic spread of lopsided, pure, empty, and balanced splits.
  uint32_t state = 12345;
  auto next = [&]() { return state = state * 1664525u + 1013904223u; };
  for (int trial = 0; trial < 200; ++trial) {
    size_t num_classes = 2 + next() % 3;
    std::vector<uint32_t> left(num_classes);
    std::vector<uint32_t> right(num_classes);
    std::vector<uint32_t> parent(num_classes);
    uint64_t left_total = 0;
    uint64_t right_total = 0;
    for (size_t c = 0; c < num_classes; ++c) {
      left[c] = next() % 20;
      right[c] = next() % 20;
      if (trial % 7 == 0) right[c] = 0;  // empty-child edge case
      parent[c] = left[c] + right[c];
      left_total += left[c];
      right_total += right[c];
    }
    for (SplitCriterion criterion :
         {SplitCriterion::kInformationGain, SplitCriterion::kGainRatio,
          SplitCriterion::kGini}) {
      double expected = SplitScore(criterion, parent, {left, right});
      EXPECT_EQ(SplitScoreBinary(criterion, parent, left, right), expected);
      BinarySplitScorer scorer(criterion, parent);
      EXPECT_EQ(scorer.Score(left, left_total, right, right_total),
                expected);
    }
  }
}

TEST(CriteriaTest, FlatScorerMatchesSplitScoreBitForBit) {
  uint32_t state = 99;
  auto next = [&]() { return state = state * 1664525u + 1013904223u; };
  for (int trial = 0; trial < 100; ++trial) {
    size_t num_classes = 2 + next() % 3;
    size_t num_children = 2 + next() % 4;
    std::vector<std::vector<uint32_t>> children(num_children);
    std::vector<uint32_t> flat;
    std::vector<uint32_t> parent(num_classes, 0);
    for (size_t k = 0; k < num_children; ++k) {
      children[k].resize(num_classes);
      for (size_t c = 0; c < num_classes; ++c) {
        children[k][c] = next() % 9;
        if (trial % 5 == 0 && k == 0) children[k][c] = 0;
        parent[c] += children[k][c];
        flat.push_back(children[k][c]);
      }
    }
    std::vector<uint32_t> size_scratch(num_children);
    for (SplitCriterion criterion :
         {SplitCriterion::kInformationGain, SplitCriterion::kGainRatio,
          SplitCriterion::kGini}) {
      EXPECT_EQ(
          SplitScoreFlat(criterion, parent, flat, num_classes, size_scratch),
          SplitScore(criterion, parent, children));
    }
  }
}

}  // namespace
}  // namespace dmt::tree
