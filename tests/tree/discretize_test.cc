#include "tree/discretize.h"

#include <gtest/gtest.h>

#include "gen/agrawal.h"
#include "tree/builder.h"

namespace dmt::tree {
namespace {

using core::AttributeType;
using core::Dataset;
using core::DatasetBuilder;

Dataset SmallNumeric() {
  DatasetBuilder builder;
  builder.AddNumericColumn("x", {0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0})
      .AddCategoricalColumn("c", {0, 1, 0, 1, 0, 1, 0, 1}, {"a", "b"})
      .SetLabels({0, 0, 0, 0, 1, 1, 1, 1}, {"lo", "hi"});
  auto result = builder.Build();
  EXPECT_TRUE(result.ok());
  return std::move(result).value();
}

TEST(DiscretizeTest, EqualWidthProducesRequestedBins) {
  Dataset data = SmallNumeric();
  auto binned = EqualWidthDiscretize(data, 4);
  ASSERT_TRUE(binned.ok());
  EXPECT_EQ(binned->attribute(0).type, AttributeType::kCategorical);
  EXPECT_EQ(binned->attribute(0).num_categories(), 4u);
  // x in [0,7], width 1.75: value 0 -> bin 0, value 7 -> bin 3.
  EXPECT_EQ(binned->Categorical(0, 0), 0u);
  EXPECT_EQ(binned->Categorical(7, 0), 3u);
  // Bin assignment is monotone in the value.
  for (size_t row = 1; row < 8; ++row) {
    EXPECT_GE(binned->Categorical(row, 0), binned->Categorical(row - 1, 0));
  }
}

TEST(DiscretizeTest, CategoricalColumnsPassThrough) {
  Dataset data = SmallNumeric();
  auto binned = EqualWidthDiscretize(data, 3);
  ASSERT_TRUE(binned.ok());
  EXPECT_EQ(binned->attribute(1).categories,
            (std::vector<std::string>{"a", "b"}));
  for (size_t row = 0; row < 8; ++row) {
    EXPECT_EQ(binned->Categorical(row, 1), data.Categorical(row, 1));
    EXPECT_EQ(binned->Label(row), data.Label(row));
  }
}

TEST(DiscretizeTest, ConstantColumnSingleBin) {
  DatasetBuilder builder;
  builder.AddNumericColumn("x", {5.0, 5.0, 5.0}).SetLabels({0, 0, 1},
                                                           {"a", "b"});
  auto data = builder.Build();
  ASSERT_TRUE(data.ok());
  auto binned = EqualWidthDiscretize(*data, 4);
  ASSERT_TRUE(binned.ok());
  EXPECT_EQ(binned->attribute(0).num_categories(), 1u);
  for (size_t row = 0; row < 3; ++row) {
    EXPECT_EQ(binned->Categorical(row, 0), 0u);
  }
}

TEST(DiscretizeTest, EqualFrequencyBalancesBinSizes) {
  // Heavily skewed values: equal-width puts almost everything in bin 0;
  // equal-frequency balances.
  DatasetBuilder builder;
  std::vector<double> values;
  std::vector<uint32_t> labels;
  for (int i = 0; i < 90; ++i) {
    values.push_back(static_cast<double>(i) / 100.0);
    labels.push_back(0);
  }
  for (int i = 0; i < 10; ++i) {
    values.push_back(100.0 + i);
    labels.push_back(1);
  }
  builder.AddNumericColumn("x", std::move(values))
      .SetLabels(std::move(labels), {"a", "b"});
  auto data = builder.Build();
  ASSERT_TRUE(data.ok());
  auto by_width = EqualWidthDiscretize(*data, 2);
  auto by_freq = EqualFrequencyDiscretize(*data, 2);
  ASSERT_TRUE(by_width.ok());
  ASSERT_TRUE(by_freq.ok());
  auto count_bin0 = [](const Dataset& d) {
    size_t count = 0;
    for (size_t row = 0; row < d.num_rows(); ++row) {
      if (d.Categorical(row, 0) == 0) ++count;
    }
    return count;
  };
  EXPECT_EQ(count_bin0(*by_width), 90u);
  EXPECT_EQ(count_bin0(*by_freq), 50u);
}

TEST(DiscretizeTest, ValidatesParameters) {
  Dataset data = SmallNumeric();
  EXPECT_FALSE(EqualWidthDiscretize(data, 1).ok());
  DatasetBuilder builder;
  builder.AddNumericColumn("x", {}).SetLabels({}, {"a"});
  auto empty = builder.Build();
  ASSERT_TRUE(empty.ok());
  EXPECT_FALSE(EqualWidthDiscretize(*empty, 4).ok());
}

TEST(DiscretizeTest, EnablesId3OnNumericData) {
  gen::AgrawalParams params;
  params.function = 1;
  params.num_records = 2000;
  auto data = gen::GenerateAgrawal(params, 31);
  ASSERT_TRUE(data.ok());
  ASSERT_FALSE(BuildId3(*data).ok());  // numeric attributes rejected
  auto binned = EqualWidthDiscretize(*data, 8);
  ASSERT_TRUE(binned.ok());
  auto tree = BuildId3(*binned);
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();
  // F1 is an age predicate; with 8 age bins ID3 should fit training data
  // decently.
  auto predictions = tree->PredictAll(*binned);
  size_t correct = 0;
  for (size_t row = 0; row < binned->num_rows(); ++row) {
    if (predictions[row] == binned->Label(row)) ++correct;
  }
  EXPECT_GT(static_cast<double>(correct) / 2000.0, 0.85);
}

TEST(DiscretizeTest, BinNamesDescribeIntervals) {
  Dataset data = SmallNumeric();
  auto binned = EqualWidthDiscretize(data, 2);
  ASSERT_TRUE(binned.ok());
  const auto& names = binned->attribute(0).categories;
  ASSERT_EQ(names.size(), 2u);
  EXPECT_NE(names[0].find("-inf"), std::string::npos);
  EXPECT_NE(names[1].find("+inf"), std::string::npos);
  EXPECT_NE(names[0].find("3.5"), std::string::npos);
}

}  // namespace
}  // namespace dmt::tree
