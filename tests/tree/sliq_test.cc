#include "tree/sliq.h"

#include <gtest/gtest.h>

#include "eval/cross_validation.h"
#include "eval/metrics.h"
#include "gen/agrawal.h"
#include "tree/builder.h"
#include "tree/pruning.h"

namespace dmt::tree {
namespace {

using core::Dataset;
using core::DatasetBuilder;

TEST(SliqTest, PerfectlySeparableNumericData) {
  DatasetBuilder builder;
  builder.AddNumericColumn("x", {1, 2, 3, 4, 6, 7, 8, 9})
      .SetLabels({0, 0, 0, 0, 1, 1, 1, 1}, {"low", "high"});
  auto data = builder.Build();
  ASSERT_TRUE(data.ok());
  auto tree = BuildSliq(*data);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->NumLeaves(), 2u);
  EXPECT_EQ(tree->root().kind, SplitKind::kNumericThreshold);
  EXPECT_NEAR(tree->root().threshold, 5.0, 1e-9);
  auto predictions = tree->PredictAll(*data);
  for (size_t row = 0; row < data->num_rows(); ++row) {
    EXPECT_EQ(predictions[row], data->Label(row));
  }
}

TEST(SliqTest, CategoricalEqualsSplits) {
  DatasetBuilder builder;
  builder
      .AddCategoricalColumn("c", {0, 0, 1, 1, 2, 2}, {"a", "b", "c"})
      .SetLabels({0, 0, 1, 1, 1, 1}, {"x", "y"});
  auto data = builder.Build();
  ASSERT_TRUE(data.ok());
  auto tree = BuildSliq(*data);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->root().kind, SplitKind::kCategoricalEquals);
  EXPECT_EQ(tree->root().category, 0u);  // a vs not-a separates perfectly
  auto predictions = tree->PredictAll(*data);
  for (size_t row = 0; row < data->num_rows(); ++row) {
    EXPECT_EQ(predictions[row], data->Label(row));
  }
}

TEST(SliqTest, MatchesCartPredictionsOnAgrawal) {
  // SLIQ evaluates the same Gini binary splits as BuildCart, only in a
  // different order (breadth-first, presorted). The grown trees must make
  // identical training-set predictions up to tie-breaking; accuracies
  // must agree tightly out of sample.
  for (int function : {1, 2, 5}) {
    gen::AgrawalParams params;
    params.function = function;
    params.num_records = 2000;
    auto data = gen::GenerateAgrawal(params, 100 + function);
    ASSERT_TRUE(data.ok());
    auto split = eval::StratifiedTrainTestSplit(data->labels(), 0.3, 3);
    ASSERT_TRUE(split.ok());
    Dataset train, test;
    eval::MaterializeSplit(*data, *split, &train, &test);

    auto sliq = BuildSliq(train);
    auto cart = BuildCart(train);
    ASSERT_TRUE(sliq.ok());
    ASSERT_TRUE(cart.ok());

    std::vector<uint32_t> truth(test.labels().begin(),
                                test.labels().end());
    auto sliq_acc = eval::Accuracy(truth, sliq->PredictAll(test));
    auto cart_acc = eval::Accuracy(truth, cart->PredictAll(test));
    ASSERT_TRUE(sliq_acc.ok());
    ASSERT_TRUE(cart_acc.ok());
    EXPECT_NEAR(*sliq_acc, *cart_acc, 0.02) << "function " << function;
    EXPECT_GT(*sliq_acc, 0.9) << "function " << function;

    // Training data is fit equally well.
    auto sliq_train = sliq->PredictAll(train);
    size_t sliq_errors = 0;
    for (size_t row = 0; row < train.num_rows(); ++row) {
      sliq_errors += sliq_train[row] != train.Label(row);
    }
    auto cart_train = cart->PredictAll(train);
    size_t cart_errors = 0;
    for (size_t row = 0; row < train.num_rows(); ++row) {
      cart_errors += cart_train[row] != train.Label(row);
    }
    EXPECT_EQ(sliq_errors, cart_errors) << "function " << function;
  }
}

TEST(SliqTest, RespectsDepthAndSizeLimits) {
  gen::AgrawalParams params;
  params.function = 2;
  params.num_records = 1000;
  auto data = gen::GenerateAgrawal(params, 17);
  ASSERT_TRUE(data.ok());
  SliqOptions options;
  options.max_depth = 3;
  auto tree = BuildSliq(*data, options);
  ASSERT_TRUE(tree.ok());
  EXPECT_LE(tree->Depth(), 3u);
  options = SliqOptions{};
  options.min_samples_split = 200;
  auto small = BuildSliq(*data, options);
  ASSERT_TRUE(small.ok());
  EXPECT_LT(small->num_nodes(), tree->num_nodes() * 10);
  for (size_t i = 0; i < small->num_nodes(); ++i) {
    if (!small->node(i).is_leaf) {
      EXPECT_GE(small->node(i).NumSamples(), 200u);
    }
  }
}

TEST(SliqTest, PureDataIsSingleLeaf) {
  DatasetBuilder builder;
  builder.AddNumericColumn("x", {1, 2, 3}).SetLabels({0, 0, 0}, {"only"});
  auto data = builder.Build();
  ASSERT_TRUE(data.ok());
  auto tree = BuildSliq(*data);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->num_nodes(), 1u);
  EXPECT_TRUE(tree->root().is_leaf);
}

TEST(SliqTest, ValidatesInputs) {
  DatasetBuilder builder;
  builder.AddNumericColumn("x", {}).SetLabels({}, {"a"});
  auto empty = builder.Build();
  ASSERT_TRUE(empty.ok());
  EXPECT_FALSE(BuildSliq(*empty).ok());
  SliqOptions options;
  options.min_samples_split = 1;
  DatasetBuilder builder2;
  builder2.AddNumericColumn("x", {1.0}).SetLabels({0}, {"a"});
  auto tiny = builder2.Build();
  ASSERT_TRUE(tiny.ok());
  EXPECT_FALSE(BuildSliq(*tiny, options).ok());
}

TEST(SliqTest, WorksWithPruning) {
  gen::AgrawalParams params;
  params.function = 2;
  params.num_records = 2000;
  params.label_noise = 0.15;
  auto data = gen::GenerateAgrawal(params, 23);
  ASSERT_TRUE(data.ok());
  auto tree = BuildSliq(*data);
  ASSERT_TRUE(tree.ok());
  size_t before = tree->NumLeaves();
  CostComplexityPrune(&*tree, 0.001);
  EXPECT_LT(tree->NumLeaves(), before);
  EXPECT_GE(tree->NumLeaves(), 1u);
}

}  // namespace
}  // namespace dmt::tree
