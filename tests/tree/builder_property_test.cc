// Property sweep over every Agrawal function and every tree builder:
// learned trees must beat the majority baseline out of sample, fit the
// training set at least as well as a stump, and predict deterministically.
#include <gtest/gtest.h>

#include <algorithm>

#include "eval/cross_validation.h"
#include "eval/metrics.h"
#include "gen/agrawal.h"
#include "tree/builder.h"
#include "tree/discretize.h"
#include "tree/sliq.h"

namespace dmt::tree {
namespace {

using core::Dataset;

enum class Builder {
  kC45,
  kCart,
  kSliq,
  kId3Binned,
  /// Ablation/diff variants of the greedy engine: the naive re-sorting
  /// split search and the threaded presorted search must satisfy every
  /// property the defaults do (and grow the very same trees — pinned
  /// node-for-node by parallel_diff_test).
  kC45Naive,
  kCartThreaded,
};

std::string BuilderName(Builder builder) {
  switch (builder) {
    case Builder::kC45:
      return "C45";
    case Builder::kCart:
      return "Cart";
    case Builder::kSliq:
      return "Sliq";
    case Builder::kId3Binned:
      return "Id3Binned";
    case Builder::kC45Naive:
      return "C45Naive";
    case Builder::kCartThreaded:
      return "CartThreaded";
  }
  return "?";
}

struct Fitted {
  DecisionTree tree;
  Dataset train;
  Dataset test;
};

core::Result<Fitted> Fit(Builder builder, int function, uint64_t seed) {
  gen::AgrawalParams params;
  params.function = function;
  params.num_records = 1500;
  DMT_ASSIGN_OR_RETURN(Dataset data, gen::GenerateAgrawal(params, seed));
  DMT_ASSIGN_OR_RETURN(
      eval::Split split,
      eval::StratifiedTrainTestSplit(data.labels(), 0.3, seed + 1));
  Fitted out;
  eval::MaterializeSplit(data, split, &out.train, &out.test);
  switch (builder) {
    case Builder::kC45: {
      DMT_ASSIGN_OR_RETURN(out.tree, BuildC45(out.train));
      return out;
    }
    case Builder::kCart: {
      DMT_ASSIGN_OR_RETURN(out.tree, BuildCart(out.train));
      return out;
    }
    case Builder::kSliq: {
      DMT_ASSIGN_OR_RETURN(out.tree, BuildSliq(out.train));
      return out;
    }
    case Builder::kId3Binned: {
      DMT_ASSIGN_OR_RETURN(Dataset binned_train,
                           EqualWidthDiscretize(out.train, 8));
      DMT_ASSIGN_OR_RETURN(Dataset binned_test,
                           EqualWidthDiscretize(out.test, 8));
      out.train = std::move(binned_train);
      out.test = std::move(binned_test);
      DMT_ASSIGN_OR_RETURN(out.tree, BuildId3(out.train));
      return out;
    }
    case Builder::kC45Naive: {
      TreeOptions options;
      options.split_search = SplitSearch::kNaive;
      DMT_ASSIGN_OR_RETURN(out.tree, BuildC45(out.train, options));
      return out;
    }
    case Builder::kCartThreaded: {
      TreeOptions options;
      options.num_threads = 4;
      DMT_ASSIGN_OR_RETURN(out.tree, BuildCart(out.train, options));
      return out;
    }
  }
  return core::Status::Internal("unknown builder");
}

using PropertyParam = std::tuple<Builder, int>;

class TreePropertyTest : public testing::TestWithParam<PropertyParam> {};

TEST_P(TreePropertyTest, BeatsMajorityBaselineOutOfSample) {
  auto [builder, function] = GetParam();
  auto fitted = Fit(builder, function, 300 + function);
  ASSERT_TRUE(fitted.ok()) << fitted.status().ToString();
  std::vector<uint32_t> truth(fitted->test.labels().begin(),
                              fitted->test.labels().end());
  auto accuracy =
      eval::Accuracy(truth, fitted->tree.PredictAll(fitted->test));
  ASSERT_TRUE(accuracy.ok());
  auto counts = fitted->test.ClassCounts();
  double majority =
      static_cast<double>(
          *std::max_element(counts.begin(), counts.end())) /
      static_cast<double>(fitted->test.num_rows());
  // On roughly balanced functions demand a real improvement; on the
  // heavily skewed ones (F10's groupB is ~0.2% of records) demand
  // non-inferiority to the majority vote.
  double bar = majority < 0.9 ? majority + 0.02 : majority - 0.01;
  EXPECT_GT(*accuracy, bar) << BuilderName(builder) << " F" << function
                            << " majority " << majority;
}

TEST_P(TreePropertyTest, PredictionsAreDeterministic) {
  auto [builder, function] = GetParam();
  auto a = Fit(builder, function, 300 + function);
  auto b = Fit(builder, function, 300 + function);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->tree.PredictAll(a->test), b->tree.PredictAll(b->test));
  EXPECT_EQ(a->tree.num_nodes(), b->tree.num_nodes());
}

TEST_P(TreePropertyTest, LeafHistogramsSumToTrainingRows) {
  auto [builder, function] = GetParam();
  auto fitted = Fit(builder, function, 300 + function);
  ASSERT_TRUE(fitted.ok());
  // Sum of reachable-leaf sample counts must equal the training size.
  uint64_t total = 0;
  std::vector<size_t> stack = {0};
  while (!stack.empty()) {
    size_t index = stack.back();
    stack.pop_back();
    const TreeNode& node = fitted->tree.node(index);
    if (node.is_leaf) {
      total += node.NumSamples();
      continue;
    }
    for (uint32_t child : node.children) stack.push_back(child);
  }
  EXPECT_EQ(total, fitted->train.num_rows());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TreePropertyTest,
    testing::Combine(testing::Values(Builder::kC45, Builder::kCart,
                                     Builder::kSliq, Builder::kId3Binned,
                                     Builder::kC45Naive,
                                     Builder::kCartThreaded),
                     testing::Range(1, 11)),
    [](const testing::TestParamInfo<PropertyParam>& param_info) {
      return BuilderName(std::get<0>(param_info.param)) + "_F" +
             std::to_string(std::get<1>(param_info.param));
    });

}  // namespace
}  // namespace dmt::tree
