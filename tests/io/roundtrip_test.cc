// Round-trip battery for the binary container loaders (io/serialize.h):
// every artifact type is generated from seeded synthetic data, written,
// mapped, and loaded back bit-identically; mining a loaded database
// reproduces the in-memory miner's output exactly.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "assoc/apriori.h"
#include "assoc/fp_growth.h"
#include "assoc/quantitative.h"
#include "assoc/rules.h"
#include "cluster/kmeans.h"
#include "core/check.h"
#include "gen/agrawal.h"
#include "gen/mixture.h"
#include "gen/quest.h"
#include "io/serialize.h"
#include "tree/builder.h"

namespace dmt::io {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/dmt_io_roundtrip_" + name;
}

core::TransactionDatabase QuestWorkload(uint64_t seed) {
  gen::QuestParams params;
  params.num_transactions = 2000;
  params.avg_transaction_size = 8;
  params.avg_pattern_size = 3;
  params.num_items = 200;
  params.num_patterns = 100;
  auto db = gen::GenerateQuestTransactions(params, seed);
  DMT_CHECK(db.ok());
  return std::move(db).value();
}

core::Dataset AgrawalWorkload(uint64_t seed) {
  gen::AgrawalParams params;
  params.function = 2;
  params.num_records = 500;
  auto dataset = gen::GenerateAgrawal(params, seed);
  DMT_CHECK(dataset.ok());
  return std::move(dataset).value();
}

void ExpectSameDatabase(const core::TransactionDatabase& a,
                        const core::TransactionDatabase& b) {
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.total_items(), b.total_items());
  EXPECT_EQ(a.item_universe(), b.item_universe());
  ASSERT_TRUE(std::equal(a.offsets().begin(), a.offsets().end(),
                         b.offsets().begin(), b.offsets().end()));
  EXPECT_TRUE(std::equal(a.items().begin(), a.items().end(),
                         b.items().begin(), b.items().end()));
}

TEST(TransactionRoundtripTest, LoadedDatabaseIsBitIdentical) {
  for (uint64_t seed : {7u, 8u, 9u}) {
    const auto db = QuestWorkload(seed);
    const std::string path =
        TempPath("txn_" + std::to_string(seed) + ".dmtb");
    ASSERT_TRUE(WriteTransactionDatabase(db, path).ok());
    auto loaded = LoadTransactionDatabase(path);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    ExpectSameDatabase(db, *loaded);
  }
}

TEST(TransactionRoundtripTest, MappedViewMatchesAndOwnsCopy) {
  const auto db = QuestWorkload(11);
  const std::string path = TempPath("txn_mapped.dmtb");
  ASSERT_TRUE(WriteTransactionDatabase(db, path).ok());
  auto view = MappedTransactionDatabase::Map(path);
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  ASSERT_EQ(view->size(), db.size());
  EXPECT_EQ(view->item_universe(), db.item_universe());
  EXPECT_EQ(view->total_items(), db.total_items());
  EXPECT_GT(view->bytes_mapped(), 0u);
  for (size_t t = 0; t < db.size(); ++t) {
    const auto expected = db.transaction(t);
    const auto actual = view->transaction(t);
    ASSERT_TRUE(std::equal(expected.begin(), expected.end(), actual.begin(),
                           actual.end()))
        << "transaction " << t << " diverged";
  }
  ExpectSameDatabase(db, view->ToOwned());
}

TEST(TransactionRoundtripTest, EmptyDatabaseRoundtrips) {
  core::TransactionDatabase empty;
  const std::string path = TempPath("txn_empty.dmtb");
  ASSERT_TRUE(WriteTransactionDatabase(empty, path).ok());
  auto loaded = LoadTransactionDatabase(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(loaded->empty());
  auto view = MappedTransactionDatabase::Map(path);
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  EXPECT_TRUE(view->empty());
}

TEST(TransactionRoundtripTest, MiningLoadedDatabaseMatchesInMemory) {
  const auto db = QuestWorkload(21);
  const std::string path = TempPath("txn_mine.dmtb");
  ASSERT_TRUE(WriteTransactionDatabase(db, path).ok());
  auto loaded = LoadTransactionDatabase(path);
  ASSERT_TRUE(loaded.ok());

  assoc::MiningParams params;
  params.min_support = 0.01;
  auto baseline = assoc::MineApriori(db, params);
  auto reloaded = assoc::MineApriori(*loaded, params);
  ASSERT_TRUE(baseline.ok());
  ASSERT_TRUE(reloaded.ok());
  EXPECT_FALSE(baseline->itemsets.empty());
  EXPECT_EQ(baseline->itemsets, reloaded->itemsets);
  ASSERT_EQ(baseline->passes.size(), reloaded->passes.size());
  for (size_t p = 0; p < baseline->passes.size(); ++p) {
    EXPECT_EQ(baseline->passes[p].candidates, reloaded->passes[p].candidates);
    EXPECT_EQ(baseline->passes[p].frequent, reloaded->passes[p].frequent);
  }
  EXPECT_EQ(baseline->conditional_trees_built,
            reloaded->conditional_trees_built);
  EXPECT_EQ(baseline->fp_nodes_allocated, reloaded->fp_nodes_allocated);
  EXPECT_EQ(baseline->tidset_intersections, reloaded->tidset_intersections);
}

TEST(DatasetRoundtripTest, LoadedDatasetIsBitIdentical) {
  for (uint64_t seed : {3u, 4u}) {
    const auto dataset = AgrawalWorkload(seed);
    const std::string path =
        TempPath("dataset_" + std::to_string(seed) + ".dmtb");
    ASSERT_TRUE(WriteDataset(dataset, path).ok());
    auto loaded = LoadDataset(path);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    ASSERT_EQ(loaded->num_rows(), dataset.num_rows());
    ASSERT_EQ(loaded->num_attributes(), dataset.num_attributes());
    ASSERT_EQ(loaded->num_classes(), dataset.num_classes());
    EXPECT_EQ(loaded->class_names(), dataset.class_names());
    for (size_t a = 0; a < dataset.num_attributes(); ++a) {
      const auto& expected = dataset.attribute(a);
      const auto& actual = loaded->attribute(a);
      EXPECT_EQ(actual.name, expected.name);
      ASSERT_EQ(actual.type, expected.type);
      EXPECT_EQ(actual.categories, expected.categories);
      if (expected.type == core::AttributeType::kNumeric) {
        const auto want = dataset.NumericColumn(a);
        const auto got = loaded->NumericColumn(a);
        // Bit-identical doubles, not approximately-equal ones.
        ASSERT_TRUE(std::equal(want.begin(), want.end(), got.begin(),
                               got.end(),
                               [](double x, double y) {
                                 return std::memcmp(&x, &y, sizeof(x)) == 0;
                               }))
            << "numeric column " << a << " diverged";
      } else {
        const auto want = dataset.CategoricalColumn(a);
        const auto got = loaded->CategoricalColumn(a);
        ASSERT_TRUE(std::equal(want.begin(), want.end(), got.begin(),
                               got.end()));
      }
    }
    const auto want_labels = dataset.labels();
    const auto got_labels = loaded->labels();
    EXPECT_TRUE(std::equal(want_labels.begin(), want_labels.end(),
                           got_labels.begin(), got_labels.end()));
  }
}

TEST(MiningResultRoundtripTest, LoadedResultIsIdentical) {
  const auto db = QuestWorkload(31);
  assoc::MiningParams params;
  params.min_support = 0.0075;
  auto result = assoc::MineFpGrowth(db, params);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->itemsets.empty());

  const std::string path = TempPath("mining.dmtb");
  ASSERT_TRUE(WriteMiningResult(*result, path).ok());
  auto loaded = LoadMiningResult(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->itemsets, result->itemsets);
  ASSERT_EQ(loaded->passes.size(), result->passes.size());
  for (size_t p = 0; p < result->passes.size(); ++p) {
    EXPECT_EQ(loaded->passes[p].pass, result->passes[p].pass);
    EXPECT_EQ(loaded->passes[p].candidates, result->passes[p].candidates);
    EXPECT_EQ(loaded->passes[p].frequent, result->passes[p].frequent);
  }
  EXPECT_EQ(loaded->conditional_trees_built, result->conditional_trees_built);
  EXPECT_EQ(loaded->fp_nodes_allocated, result->fp_nodes_allocated);
  EXPECT_EQ(loaded->tidset_intersections, result->tidset_intersections);
  EXPECT_EQ(loaded->partitions_mined, result->partitions_mined);
  EXPECT_EQ(loaded->bytes_mapped, result->bytes_mapped);
}

TEST(RuleSetRoundtripTest, LoadedRulesAreIdentical) {
  const auto db = QuestWorkload(41);
  assoc::MiningParams params;
  params.min_support = 0.01;
  auto mined = assoc::MineApriori(db, params);
  ASSERT_TRUE(mined.ok());
  assoc::RuleParams rule_params;
  rule_params.min_confidence = 0.5;
  auto rules = assoc::GenerateRules(*mined, db.size(), rule_params);
  ASSERT_TRUE(rules.ok());
  ASSERT_FALSE(rules->empty());

  const std::string path = TempPath("rules.dmtb");
  ASSERT_TRUE(WriteRuleSet(*rules, path).ok());
  auto loaded = LoadRuleSet(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), rules->size());
  for (size_t r = 0; r < rules->size(); ++r) {
    const auto& want = (*rules)[r];
    const auto& got = (*loaded)[r];
    EXPECT_EQ(got.antecedent, want.antecedent);
    EXPECT_EQ(got.consequent, want.consequent);
    EXPECT_EQ(got.support_count, want.support_count);
    EXPECT_EQ(std::memcmp(&got.support, &want.support, sizeof(double)), 0);
    EXPECT_EQ(
        std::memcmp(&got.confidence, &want.confidence, sizeof(double)), 0);
    EXPECT_EQ(std::memcmp(&got.lift, &want.lift, sizeof(double)), 0);
    EXPECT_EQ(
        std::memcmp(&got.conviction, &want.conviction, sizeof(double)), 0);
    EXPECT_EQ(std::memcmp(&got.leverage, &want.leverage, sizeof(double)), 0);
  }
}

TEST(QuantRuleSetRoundtripTest, LoadedRuleSetIsIdentical) {
  const auto dataset = AgrawalWorkload(19);
  assoc::QuantParams params;
  params.min_support = 0.1;
  params.num_bins = 6;
  params.min_confidence = 0.6;
  auto rule_set = assoc::MineQuantitativeRules(dataset, params);
  ASSERT_TRUE(rule_set.ok());
  ASSERT_FALSE(rule_set->rules.empty());
  ASSERT_FALSE(rule_set->items.empty());

  const std::string path = TempPath("quant_rules.dmtb");
  ASSERT_TRUE(WriteQuantRuleSet(*rule_set, path).ok());
  auto loaded = LoadQuantRuleSet(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->items, rule_set->items);
  EXPECT_EQ(std::memcmp(&loaded->partial_completeness,
                        &rule_set->partial_completeness, sizeof(double)),
            0);
  EXPECT_EQ(loaded->itemsets_mined, rule_set->itemsets_mined);
  EXPECT_EQ(loaded->itemsets_attribute_distinct,
            rule_set->itemsets_attribute_distinct);
  ASSERT_EQ(loaded->rules.size(), rule_set->rules.size());
  for (size_t r = 0; r < rule_set->rules.size(); ++r) {
    const auto& want = rule_set->rules[r];
    const auto& got = loaded->rules[r];
    EXPECT_EQ(got.antecedent, want.antecedent);
    EXPECT_EQ(got.consequent, want.consequent);
    EXPECT_EQ(got.support_count, want.support_count);
    EXPECT_EQ(std::memcmp(&got.leverage, &want.leverage, sizeof(double)), 0);
    // The loaded rules format identically — labels and measures survive.
    EXPECT_EQ(assoc::FormatQuantRule(got, loaded->items),
              assoc::FormatQuantRule(want, rule_set->items));
  }
}

TEST(QuantRuleSetRoundtripTest, RejectsOutOfRangeItemIds) {
  assoc::QuantRuleSet rule_set;
  assoc::QuantItem item;
  item.attribute = 0;
  item.lo = 1.0;
  item.hi = 2.0;
  item.label = "x in [1, 2]";
  rule_set.items.push_back(item);
  assoc::AssociationRule rule;
  rule.antecedent = {0};
  rule.consequent = {7};  // only one item exists
  rule_set.rules.push_back(rule);
  const std::string path = TempPath("quant_rules_bad.dmtb");
  ASSERT_TRUE(WriteQuantRuleSet(rule_set, path).ok());
  auto loaded = LoadQuantRuleSet(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), core::StatusCode::kCorruption)
      << loaded.status().ToString();
}

TEST(DecisionTreeRoundtripTest, LoadedTreePredictsIdentically) {
  const auto dataset = AgrawalWorkload(5);
  auto built = tree::BuildC45(dataset);
  ASSERT_TRUE(built.ok());
  ASSERT_GT(built->num_nodes(), 1u);

  const std::string path = TempPath("tree.dmtb");
  ASSERT_TRUE(WriteDecisionTree(*built, path).ok());
  auto loaded = LoadDecisionTree(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->num_nodes(), built->num_nodes());
  for (size_t n = 0; n < built->num_nodes(); ++n) {
    const auto& want = built->node(n);
    const auto& got = loaded->node(n);
    EXPECT_EQ(got.is_leaf, want.is_leaf);
    EXPECT_EQ(got.kind, want.kind);
    EXPECT_EQ(got.majority_class, want.majority_class);
    EXPECT_EQ(got.attribute, want.attribute);
    EXPECT_EQ(got.category, want.category);
    EXPECT_EQ(std::memcmp(&got.threshold, &want.threshold, sizeof(double)),
              0);
    EXPECT_EQ(got.class_counts, want.class_counts);
    EXPECT_EQ(got.children, want.children);
  }
  EXPECT_EQ(loaded->ToText(), built->ToText());
  EXPECT_EQ(loaded->PredictAll(dataset), built->PredictAll(dataset));
}

TEST(KMeansRoundtripTest, LoadedModelIsBitIdentical) {
  gen::GaussianMixtureParams mixture;
  mixture.num_clusters = 4;
  mixture.points_per_cluster = 100;
  mixture.dim = 3;
  auto points = gen::GenerateGaussianMixture(mixture, /*seed=*/13);
  ASSERT_TRUE(points.ok());
  cluster::KMeansOptions options;
  options.k = 4;
  options.seed = 13;
  auto model = cluster::KMeans(points->points, options);
  ASSERT_TRUE(model.ok());

  const std::string path = TempPath("kmeans.dmtb");
  ASSERT_TRUE(WriteKMeansModel(*model, path).ok());
  auto loaded = LoadKMeansModel(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->assignments, model->assignments);
  EXPECT_EQ(loaded->iterations, model->iterations);
  EXPECT_EQ(loaded->distance_computations, model->distance_computations);
  EXPECT_EQ(std::memcmp(&loaded->sse, &model->sse, sizeof(double)), 0);
  ASSERT_EQ(loaded->centers.size(), model->centers.size());
  ASSERT_EQ(loaded->centers.dim(), model->centers.dim());
  const auto& want = model->centers.data();
  const auto& got = loaded->centers.data();
  EXPECT_EQ(std::memcmp(got.data(), want.data(),
                        want.size() * sizeof(double)),
            0);
}

}  // namespace
}  // namespace dmt::io
