// Corruption battery for the binary container: truncations, bit flips in
// every region, bad magic, unsupported versions, lying section tables,
// wrong artifact types, and semantically malformed payloads must all
// surface as descriptive core::Status errors — never a crash or an
// out-of-bounds access (this suite runs under ASan and TSan via
// DMT_SANITIZE in tools/check.sh).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <cstring>
#include <string>
#include <vector>

#include "assoc/apriori.h"
#include "core/check.h"
#include "core/crc32.h"
#include "core/mmap_file.h"
#include "gen/agrawal.h"
#include "gen/quest.h"
#include "io/bytes.h"
#include "io/container.h"
#include "io/serialize.h"
#include "tree/builder.h"

namespace dmt::io {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/dmt_io_corruption_" + name;
}

std::vector<std::byte> ReadBytes(const std::string& path) {
  auto text = core::ReadFileString(path);
  DMT_CHECK(text.ok());
  const auto* data = reinterpret_cast<const std::byte*>(text->data());
  return std::vector<std::byte>(data, data + text->size());
}

void WriteBytes(const std::string& path,
                const std::vector<std::byte>& bytes) {
  DMT_CHECK(core::WriteFileBytes(path, bytes).ok());
}

/// Recomputes the header/table CRC after a test deliberately edits header
/// or table fields (so the edit is seen by the semantic checks instead of
/// being masked by the checksum).
void FixHeaderCrc(std::vector<std::byte>* bytes) {
  FileHeader header;
  std::memcpy(&header, bytes->data(), sizeof(header));
  header.header_crc32 = 0;
  uint32_t crc = core::Crc32(&header, sizeof(header));
  crc = core::Crc32(bytes->data() + sizeof(FileHeader),
                    header.section_count * sizeof(SectionEntry), crc);
  std::memcpy(bytes->data() + offsetof(FileHeader, header_crc32), &crc,
              sizeof(crc));
}

core::TransactionDatabase TinyDatabase() {
  gen::QuestParams params;
  params.num_transactions = 200;
  params.avg_transaction_size = 6;
  params.num_items = 50;
  params.num_patterns = 20;
  auto db = gen::GenerateQuestTransactions(params, /*seed=*/3);
  DMT_CHECK(db.ok());
  return std::move(db).value();
}

/// A written transaction container plus its bytes, shared by the tests.
std::vector<std::byte> ValidContainerBytes() {
  static const std::vector<std::byte>* bytes = [] {
    const std::string path = TempPath("valid.dmtb");
    DMT_CHECK(WriteTransactionDatabase(TinyDatabase(), path).ok());
    return new std::vector<std::byte>(ReadBytes(path));
  }();
  return *bytes;
}

TEST(CorruptionTest, MissingFileIsAnError) {
  auto loaded = LoadTransactionDatabase(TempPath("does_not_exist.dmtb"));
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), core::StatusCode::kIOError);
}

TEST(CorruptionTest, EveryTruncationFails) {
  const auto bytes = ValidContainerBytes();
  const std::string path = TempPath("truncated.dmtb");
  for (size_t length = 0; length < bytes.size();
       length += (length < 64 ? 1 : 7)) {
    WriteBytes(path, std::vector<std::byte>(bytes.begin(),
                                            bytes.begin() + length));
    auto loaded = LoadTransactionDatabase(path);
    ASSERT_FALSE(loaded.ok()) << "truncation to " << length
                              << " bytes was accepted";
    EXPECT_EQ(loaded.status().code(), core::StatusCode::kCorruption)
        << loaded.status().ToString();
    EXPECT_FALSE(loaded.status().message().empty());
  }
}

TEST(CorruptionTest, EveryFlippedByteFailsOrLoadsTheOriginal) {
  const auto bytes = ValidContainerBytes();
  const std::string path = TempPath("flipped.dmtb");
  auto baseline = LoadTransactionDatabase(TempPath("valid.dmtb"));
  ASSERT_TRUE(baseline.ok());
  for (size_t pos = 0; pos < bytes.size(); ++pos) {
    auto corrupt = bytes;
    corrupt[pos] ^= std::byte{0xFF};
    WriteBytes(path, corrupt);
    auto loaded = LoadTransactionDatabase(path);
    if (loaded.ok()) {
      // Only inter-section alignment padding is outside every checksum;
      // a load that still succeeds must be unaffected by the flip.
      EXPECT_TRUE(std::equal(baseline->items().begin(),
                             baseline->items().end(),
                             loaded->items().begin(),
                             loaded->items().end()))
          << "flip at byte " << pos << " silently changed the payload";
    } else {
      EXPECT_FALSE(loaded.status().message().empty());
    }
  }
}

TEST(CorruptionTest, BadMagicIsRejected) {
  auto bytes = ValidContainerBytes();
  bytes[0] = std::byte{'X'};
  FixHeaderCrc(&bytes);
  auto reader = ContainerReader::FromBytes(
      bytes, ArtifactType::kTransactionDatabase);
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), core::StatusCode::kCorruption);
  EXPECT_NE(reader.status().message().find("magic"), std::string::npos)
      << reader.status().ToString();
}

TEST(CorruptionTest, UnsupportedVersionIsRejected) {
  auto bytes = ValidContainerBytes();
  const uint32_t future_version = 99;
  std::memcpy(bytes.data() + offsetof(FileHeader, format_version),
              &future_version, sizeof(future_version));
  FixHeaderCrc(&bytes);
  auto reader = ContainerReader::FromBytes(
      bytes, ArtifactType::kTransactionDatabase);
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), core::StatusCode::kInvalidArgument);
  EXPECT_NE(reader.status().message().find("version"), std::string::npos);
}

TEST(CorruptionTest, OversizedSectionLengthIsRejected) {
  auto bytes = ValidContainerBytes();
  // Entry 0 starts right after the header; length sits at offset 16
  // within the entry.
  const size_t entry0 = sizeof(FileHeader);
  const uint64_t huge = 1ull << 40;
  std::memcpy(bytes.data() + entry0 + offsetof(SectionEntry, length), &huge,
              sizeof(huge));
  FixHeaderCrc(&bytes);
  auto reader = ContainerReader::FromBytes(
      bytes, ArtifactType::kTransactionDatabase);
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), core::StatusCode::kCorruption);
  EXPECT_NE(reader.status().message().find("outside"), std::string::npos);
}

TEST(CorruptionTest, OverlappingSectionsAreRejected) {
  auto bytes = ValidContainerBytes();
  // Point entry 1 at entry 0's payload.
  const size_t entry0 = sizeof(FileHeader);
  const size_t entry1 = entry0 + sizeof(SectionEntry);
  uint64_t offset0 = 0;
  std::memcpy(&offset0, bytes.data() + entry0 + offsetof(SectionEntry, offset),
              sizeof(offset0));
  std::memcpy(bytes.data() + entry1 + offsetof(SectionEntry, offset),
              &offset0, sizeof(offset0));
  // Keep entry 1's CRC valid for its new payload so the overlap check is
  // what fires, not the checksum.
  uint64_t length1 = 0;
  std::memcpy(&length1, bytes.data() + entry1 + offsetof(SectionEntry, length),
              sizeof(length1));
  if (offset0 + length1 <= bytes.size()) {
    const uint32_t crc =
        core::Crc32(bytes.data() + offset0, static_cast<size_t>(length1));
    std::memcpy(bytes.data() + entry1 + offsetof(SectionEntry, crc32), &crc,
                sizeof(crc));
  }
  FixHeaderCrc(&bytes);
  auto reader = ContainerReader::FromBytes(
      bytes, ArtifactType::kTransactionDatabase);
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), core::StatusCode::kCorruption);
}

TEST(CorruptionTest, WrongArtifactTypeIsRejected) {
  const std::string path = TempPath("dataset.dmtb");
  gen::AgrawalParams params;
  params.num_records = 50;
  auto dataset = gen::GenerateAgrawal(params, /*seed=*/1);
  ASSERT_TRUE(dataset.ok());
  ASSERT_TRUE(WriteDataset(*dataset, path).ok());
  auto loaded = LoadTransactionDatabase(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), core::StatusCode::kInvalidArgument);
  EXPECT_NE(loaded.status().message().find("Dataset"), std::string::npos)
      << loaded.status().ToString();
}

TEST(CorruptionTest, SemanticallyMalformedPayloadIsRejected) {
  // A container whose envelope is pristine but whose payload violates the
  // database invariants (decreasing offsets) must still fail.
  ByteWriter meta;
  meta.PutU64(2);  // transactions
  meta.PutU64(3);  // total items
  meta.PutU64(8);  // item universe
  const std::vector<uint64_t> offsets = {0, 2, 1};  // decreasing
  const std::vector<uint32_t> items = {1, 7, 3};
  ContainerWriter writer(ArtifactType::kTransactionDatabase);
  writer.AddSection(1, meta.bytes());
  writer.AddArraySection<uint64_t>(2, offsets);
  writer.AddArraySection<uint32_t>(3, items);
  const std::string path = TempPath("semantic.dmtb");
  ASSERT_TRUE(writer.WriteToFile(path).ok());

  auto loaded = LoadTransactionDatabase(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), core::StatusCode::kCorruption);
  auto mapped = MappedTransactionDatabase::Map(path);
  ASSERT_FALSE(mapped.ok());
  EXPECT_EQ(mapped.status().code(), core::StatusCode::kCorruption);
}

TEST(CorruptionTest, UnsortedTransactionIsRejected) {
  ByteWriter meta;
  meta.PutU64(1);
  meta.PutU64(3);
  meta.PutU64(8);
  const std::vector<uint64_t> offsets = {0, 3};
  const std::vector<uint32_t> items = {5, 2, 7};  // not increasing
  ContainerWriter writer(ArtifactType::kTransactionDatabase);
  writer.AddSection(1, meta.bytes());
  writer.AddArraySection<uint64_t>(2, offsets);
  writer.AddArraySection<uint32_t>(3, items);
  const std::string path = TempPath("unsorted.dmtb");
  ASSERT_TRUE(writer.WriteToFile(path).ok());
  for (const auto& status : {LoadTransactionDatabase(path).status(),
                             MappedTransactionDatabase::Map(path).status()}) {
    EXPECT_EQ(status.code(), core::StatusCode::kCorruption);
    EXPECT_NE(status.message().find("increasing"), std::string::npos)
        << status.ToString();
  }
}

/// Flips one byte in the middle of every section payload of every
/// artifact type and asserts the matching loader reports corruption.
template <typename LoadFn>
void ExpectSectionFlipsRejected(const std::string& path, LoadFn load) {
  auto bytes = ReadBytes(path);
  FileHeader header;
  std::memcpy(&header, bytes.data(), sizeof(header));
  std::vector<SectionEntry> entries(header.section_count);
  std::memcpy(entries.data(), bytes.data() + sizeof(FileHeader),
              entries.size() * sizeof(SectionEntry));
  const std::string corrupt_path = path + ".corrupt";
  for (const SectionEntry& entry : entries) {
    if (entry.length == 0) continue;
    auto corrupt = bytes;
    corrupt[entry.offset + entry.length / 2] ^= std::byte{0x5A};
    WriteBytes(corrupt_path, corrupt);
    auto loaded = load(corrupt_path);
    ASSERT_FALSE(loaded.ok())
        << "flip in section " << entry.id << " of " << path
        << " was accepted";
    EXPECT_EQ(loaded.status().code(), core::StatusCode::kCorruption);
    EXPECT_NE(loaded.status().message().find("CRC"), std::string::npos)
        << loaded.status().ToString();
  }
}

TEST(CorruptionTest, FlippedSectionBytesRejectedForEveryArtifact) {
  const auto db = TinyDatabase();
  const std::string txn_path = TempPath("artifact_txn.dmtb");
  ASSERT_TRUE(WriteTransactionDatabase(db, txn_path).ok());
  ExpectSectionFlipsRejected(txn_path, [](const std::string& p) {
    return LoadTransactionDatabase(p);
  });

  assoc::MiningParams params;
  params.min_support = 0.05;
  auto mined = assoc::MineApriori(db, params);
  ASSERT_TRUE(mined.ok());
  const std::string mining_path = TempPath("artifact_mining.dmtb");
  ASSERT_TRUE(WriteMiningResult(*mined, mining_path).ok());
  ExpectSectionFlipsRejected(mining_path, [](const std::string& p) {
    return LoadMiningResult(p);
  });

  gen::AgrawalParams agrawal;
  agrawal.num_records = 100;
  auto dataset = gen::GenerateAgrawal(agrawal, /*seed=*/2);
  ASSERT_TRUE(dataset.ok());
  const std::string dataset_path = TempPath("artifact_dataset.dmtb");
  ASSERT_TRUE(WriteDataset(*dataset, dataset_path).ok());
  ExpectSectionFlipsRejected(dataset_path, [](const std::string& p) {
    return LoadDataset(p);
  });

  auto built = tree::BuildC45(*dataset);
  ASSERT_TRUE(built.ok());
  const std::string tree_path = TempPath("artifact_tree.dmtb");
  ASSERT_TRUE(WriteDecisionTree(*built, tree_path).ok());
  ExpectSectionFlipsRejected(tree_path, [](const std::string& p) {
    return LoadDecisionTree(p);
  });
}

TEST(CorruptionTest, TreeWithDanglingChildIsRejected) {
  // Valid envelope, malformed node arena: child index past num_nodes.
  ByteWriter meta;
  meta.PutU64(1);
  ByteWriter nodes;
  nodes.PutU8(0);   // internal node
  nodes.PutU8(2);   // kNumericThreshold
  nodes.PutU32(0);  // majority
  nodes.PutU32(0);  // attribute
  nodes.PutU32(0);  // category
  nodes.PutF64(1.5);
  nodes.PutArray<uint32_t>(std::vector<uint32_t>{3, 1});  // class counts
  nodes.PutArray<uint32_t>(std::vector<uint32_t>{7});     // dangling child
  ByteWriter names;
  names.PutU32(0);
  names.PutU32(0);
  names.PutU32(0);
  ContainerWriter writer(ArtifactType::kDecisionTree);
  writer.AddSection(1, meta.bytes());
  writer.AddSection(2, nodes.bytes());
  writer.AddSection(3, names.bytes());
  const std::string path = TempPath("dangling_tree.dmtb");
  ASSERT_TRUE(writer.WriteToFile(path).ok());
  auto loaded = LoadDecisionTree(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), core::StatusCode::kCorruption);
  EXPECT_NE(loaded.status().message().find("child"), std::string::npos);
}

TEST(CorruptionTest, KMeansAssignmentOutOfRangeIsRejected) {
  ByteWriter meta;
  meta.PutU64(2);  // k
  meta.PutU64(2);  // dim
  meta.PutU64(3);  // points
  meta.PutU64(4);  // iterations
  meta.PutU64(10);
  meta.PutF64(1.0);
  const std::vector<double> centers = {0, 0, 1, 1};
  const std::vector<uint32_t> assignments = {0, 1, 2};  // 2 >= k
  ContainerWriter writer(ArtifactType::kKMeansModel);
  writer.AddSection(1, meta.bytes());
  writer.AddArraySection<double>(2, centers);
  writer.AddArraySection<uint32_t>(3, assignments);
  const std::string path = TempPath("bad_kmeans.dmtb");
  ASSERT_TRUE(writer.WriteToFile(path).ok());
  auto loaded = LoadKMeansModel(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), core::StatusCode::kCorruption);
}

}  // namespace
}  // namespace dmt::io
