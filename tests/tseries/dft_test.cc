#include "tseries/dft.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "core/rng.h"

namespace dmt::tseries {
namespace {

TEST(DftTest, IsPowerOfTwo) {
  EXPECT_FALSE(IsPowerOfTwo(0));
  EXPECT_TRUE(IsPowerOfTwo(1));
  EXPECT_TRUE(IsPowerOfTwo(2));
  EXPECT_FALSE(IsPowerOfTwo(3));
  EXPECT_TRUE(IsPowerOfTwo(1024));
  EXPECT_FALSE(IsPowerOfTwo(1023));
}

TEST(DftTest, EmptyInput) {
  EXPECT_TRUE(Dft({}).empty());
  EXPECT_TRUE(DftFeatures({}, 3).empty());
}

TEST(DftTest, ConstantSeriesConcentratesInDc) {
  std::vector<double> values(16, 2.0);
  auto coefficients = Dft(values);
  ASSERT_EQ(coefficients.size(), 16u);
  // DC coefficient: 16 * 2 / sqrt(16) = 8.
  EXPECT_NEAR(coefficients[0].real(), 8.0, 1e-12);
  EXPECT_NEAR(coefficients[0].imag(), 0.0, 1e-12);
  for (size_t f = 1; f < 16; ++f) {
    EXPECT_NEAR(std::abs(coefficients[f]), 0.0, 1e-12) << f;
  }
}

TEST(DftTest, PureToneAppearsAtItsFrequency) {
  const size_t n = 64;
  std::vector<double> values(n);
  for (size_t t = 0; t < n; ++t) {
    values[t] = std::cos(2.0 * std::numbers::pi * 5.0 *
                         static_cast<double>(t) / static_cast<double>(n));
  }
  auto coefficients = Dft(values);
  // cos splits between frequencies 5 and n-5, each sqrt(n)/2 magnitude.
  EXPECT_NEAR(std::abs(coefficients[5]), std::sqrt(64.0) / 2.0, 1e-9);
  EXPECT_NEAR(std::abs(coefficients[59]), std::sqrt(64.0) / 2.0, 1e-9);
  EXPECT_NEAR(std::abs(coefficients[4]), 0.0, 1e-9);
}

TEST(DftTest, FftMatchesNaiveDefinition) {
  core::Rng rng(7);
  // 32 is a power of two: exercised by the FFT path. Compare against the
  // O(n^2) definition evaluated on a 33-length zero-padless basis by
  // forcing the naive path with a prime length slice check instead:
  // compute both on the same power-of-two input via the formula here.
  std::vector<double> values(32);
  for (auto& v : values) v = rng.UniformDouble(-1.0, 1.0);
  auto fast = Dft(values);
  // Naive reference computed inline.
  const size_t n = values.size();
  for (size_t f = 0; f < n; ++f) {
    std::complex<double> sum(0.0, 0.0);
    for (size_t t = 0; t < n; ++t) {
      double angle = -2.0 * std::numbers::pi * static_cast<double>(f) *
                     static_cast<double>(t) / static_cast<double>(n);
      sum += values[t] *
             std::complex<double>(std::cos(angle), std::sin(angle));
    }
    sum /= std::sqrt(static_cast<double>(n));
    EXPECT_NEAR(fast[f].real(), sum.real(), 1e-9) << f;
    EXPECT_NEAR(fast[f].imag(), sum.imag(), 1e-9) << f;
  }
}

TEST(DftTest, NonPowerOfTwoLengthsWork) {
  core::Rng rng(9);
  std::vector<double> values(17);
  for (auto& v : values) v = rng.Normal();
  auto coefficients = Dft(values);
  EXPECT_EQ(coefficients.size(), 17u);
}

TEST(DftTest, ParsevalEnergyPreserved) {
  core::Rng rng(11);
  for (size_t n : {16u, 21u, 64u}) {
    std::vector<double> values(n);
    double time_energy = 0.0;
    for (auto& v : values) {
      v = rng.Normal();
      time_energy += v * v;
    }
    auto coefficients = Dft(values);
    double frequency_energy = 0.0;
    for (const auto& c : coefficients) frequency_energy += std::norm(c);
    EXPECT_NEAR(time_energy, frequency_energy, 1e-9 * time_energy + 1e-12)
        << n;
  }
}

TEST(DftTest, FeatureVectorLayout) {
  std::vector<double> values(8, 1.0);
  auto features = DftFeatures(values, 2);
  ASSERT_EQ(features.size(), 4u);
  EXPECT_NEAR(features[0], 8.0 / std::sqrt(8.0), 1e-12);  // DC real
  EXPECT_NEAR(features[1], 0.0, 1e-12);                   // DC imag
}

TEST(DftTest, FeatureCountClampedToLength) {
  std::vector<double> values(4, 1.0);
  auto features = DftFeatures(values, 100);
  EXPECT_EQ(features.size(), 8u);  // 4 coefficients * 2
}

TEST(DftTest, LinearityHolds) {
  core::Rng rng(13);
  std::vector<double> a(32), b(32), sum(32);
  for (size_t i = 0; i < 32; ++i) {
    a[i] = rng.Normal();
    b[i] = rng.Normal();
    sum[i] = a[i] + 2.0 * b[i];
  }
  auto fa = Dft(a);
  auto fb = Dft(b);
  auto fsum = Dft(sum);
  for (size_t f = 0; f < 32; ++f) {
    std::complex<double> expected = fa[f] + 2.0 * fb[f];
    EXPECT_NEAR(std::abs(fsum[f] - expected), 0.0, 1e-9);
  }
}

}  // namespace
}  // namespace dmt::tseries
