#include "tseries/similarity.h"

#include <gtest/gtest.h>

#include <cmath>

#include "gen/timeseries.h"

namespace dmt::tseries {
namespace {

std::vector<std::vector<double>> Walks(size_t count, size_t length,
                                       uint64_t seed) {
  gen::RandomWalkParams params;
  params.num_series = count;
  params.length = length;
  auto walks = gen::GenerateRandomWalks(params, seed);
  EXPECT_TRUE(walks.ok());
  return std::move(walks).value();
}

TEST(SimilarityTest, IndexCountsWindows) {
  auto walks = Walks(3, 100, 1);
  SubsequenceIndexOptions options;
  options.window = 32;
  auto index = SubsequenceIndex::Build(walks, options);
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index->num_windows(), 3u * (100 - 32 + 1));
}

TEST(SimilarityTest, StrideReducesWindows) {
  auto walks = Walks(1, 100, 2);
  SubsequenceIndexOptions options;
  options.window = 32;
  options.stride = 8;
  auto index = SubsequenceIndex::Build(walks, options);
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index->num_windows(), (100 - 32) / 8 + 1);
}

TEST(SimilarityTest, ShortSeriesSkipped) {
  std::vector<std::vector<double>> series = {
      std::vector<double>(10, 0.0), std::vector<double>(64, 0.0)};
  SubsequenceIndexOptions options;
  options.window = 32;
  auto index = SubsequenceIndex::Build(series, options);
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index->num_windows(), 64u - 32 + 1);
}

TEST(SimilarityTest, FindsExactSelfMatch) {
  auto walks = Walks(5, 256, 3);
  SubsequenceIndexOptions options;
  options.window = 64;
  auto index = SubsequenceIndex::Build(walks, options);
  ASSERT_TRUE(index.ok());
  std::span<const double> query(walks[2].data() + 50, 64);
  auto matches = index->RangeQuery(query, 1e-9);
  ASSERT_TRUE(matches.ok());
  bool found = false;
  for (const auto& match : *matches) {
    if (match.series == 2 && match.offset == 50) {
      found = true;
      EXPECT_NEAR(match.distance, 0.0, 1e-9);
    }
  }
  EXPECT_TRUE(found);
}

TEST(SimilarityTest, FindsPlantedNoisyMotif) {
  auto walks = Walks(10, 512, 4);
  std::vector<double> motif(walks[0].begin() + 100,
                            walks[0].begin() + 164);
  ASSERT_TRUE(
      gen::PlantMotif(&walks, 7, 300, motif, /*noise_stddev=*/0.05, 9)
          .ok());
  SubsequenceIndexOptions options;
  options.window = 64;
  auto index = SubsequenceIndex::Build(walks, options);
  ASSERT_TRUE(index.ok());
  auto matches = index->RangeQuery(motif, /*epsilon=*/1.0);
  ASSERT_TRUE(matches.ok());
  bool found_original = false, found_planted = false;
  for (const auto& match : *matches) {
    if (match.series == 0 && match.offset == 100) found_original = true;
    if (match.series == 7 && match.offset == 300) found_planted = true;
  }
  EXPECT_TRUE(found_original);
  EXPECT_TRUE(found_planted);
}

TEST(SimilarityTest, NoFalseDismissalsAgainstBruteForce) {
  auto walks = Walks(6, 300, 5);
  for (size_t coefficients : {1u, 2u, 4u}) {
    SubsequenceIndexOptions options;
    options.window = 50;
    options.num_coefficients = coefficients;
    auto index = SubsequenceIndex::Build(walks, options);
    ASSERT_TRUE(index.ok());
    // Query: a window of one of the series, several radii.
    std::span<const double> query(walks[1].data() + 77, 50);
    for (double epsilon : {0.5, 2.0, 8.0}) {
      QueryStats fast_stats, brute_stats;
      auto fast = index->RangeQuery(query, epsilon, &fast_stats);
      auto brute =
          index->RangeQueryBruteForce(query, epsilon, &brute_stats);
      ASSERT_TRUE(fast.ok());
      ASSERT_TRUE(brute.ok());
      EXPECT_EQ(*fast, *brute)
          << "coefficients " << coefficients << " eps " << epsilon;
      // The filter never checks more than everything and never admits
      // fewer candidates than there are true matches.
      EXPECT_LE(fast_stats.candidates, fast_stats.windows_indexed);
      EXPECT_GE(fast_stats.candidates, fast_stats.matches);
    }
  }
}

TEST(SimilarityTest, MoreCoefficientsTightenTheFilter) {
  auto walks = Walks(8, 400, 6);
  std::span<const double> query(walks[3].data() + 10, 64);
  size_t previous_candidates = SIZE_MAX;
  for (size_t coefficients : {1u, 2u, 4u, 8u}) {
    SubsequenceIndexOptions options;
    options.window = 64;
    options.num_coefficients = coefficients;
    auto index = SubsequenceIndex::Build(walks, options);
    ASSERT_TRUE(index.ok());
    QueryStats stats;
    auto matches = index->RangeQuery(query, 4.0, &stats);
    ASSERT_TRUE(matches.ok());
    // Adding coefficients only removes candidates (the bound tightens).
    EXPECT_LE(stats.candidates, previous_candidates);
    previous_candidates = stats.candidates;
  }
}


TEST(SimilarityTest, VerticalShiftInvariantMatching) {
  auto walks = Walks(4, 300, 31);
  // Copy a window of series 0 into series 2 with a large vertical offset.
  const size_t window = 64;
  std::vector<double> motif(walks[0].begin() + 40,
                            walks[0].begin() + 40 + window);
  for (size_t i = 0; i < window; ++i) {
    walks[2][100 + i] = motif[i] + 500.0;  // same shape, shifted far up
  }
  SubsequenceIndexOptions plain;
  plain.window = window;
  SubsequenceIndexOptions shifted = plain;
  shifted.vertical_shift_invariant = true;

  auto plain_index = SubsequenceIndex::Build(walks, plain);
  auto shift_index = SubsequenceIndex::Build(walks, shifted);
  ASSERT_TRUE(plain_index.ok());
  ASSERT_TRUE(shift_index.ok());

  auto plain_matches = plain_index->RangeQuery(motif, 1.0);
  auto shift_matches = shift_index->RangeQuery(motif, 1.0);
  ASSERT_TRUE(plain_matches.ok());
  ASSERT_TRUE(shift_matches.ok());
  auto contains = [](const std::vector<SubsequenceMatch>& matches,
                     uint32_t series, uint32_t offset) {
    for (const auto& match : matches) {
      if (match.series == series && match.offset == offset) return true;
    }
    return false;
  };
  // Plain matching misses the shifted copy; v-shift matching finds it.
  EXPECT_TRUE(contains(*plain_matches, 0, 40));
  EXPECT_FALSE(contains(*plain_matches, 2, 100));
  EXPECT_TRUE(contains(*shift_matches, 0, 40));
  EXPECT_TRUE(contains(*shift_matches, 2, 100));
}

TEST(SimilarityTest, VerticalShiftModeStillExact) {
  auto walks = Walks(5, 200, 33);
  SubsequenceIndexOptions options;
  options.window = 32;
  options.num_coefficients = 2;
  options.vertical_shift_invariant = true;
  auto index = SubsequenceIndex::Build(walks, options);
  ASSERT_TRUE(index.ok());
  std::span<const double> query(walks[1].data() + 60, 32);
  for (double epsilon : {0.5, 2.0, 6.0}) {
    auto fast = index->RangeQuery(query, epsilon);
    auto brute = index->RangeQueryBruteForce(query, epsilon);
    ASSERT_TRUE(fast.ok());
    ASSERT_TRUE(brute.ok());
    EXPECT_EQ(*fast, *brute) << "eps " << epsilon;
  }
}

TEST(SimilarityTest, ValidatesInputs) {
  auto walks = Walks(2, 100, 7);
  SubsequenceIndexOptions options;
  options.window = 0;
  EXPECT_FALSE(SubsequenceIndex::Build(walks, options).ok());
  options.window = 32;
  options.num_coefficients = 0;
  EXPECT_FALSE(SubsequenceIndex::Build(walks, options).ok());
  options.num_coefficients = 17;  // > window / 2
  EXPECT_FALSE(SubsequenceIndex::Build(walks, options).ok());
  options.num_coefficients = 3;
  options.stride = 0;
  EXPECT_FALSE(SubsequenceIndex::Build(walks, options).ok());

  options = SubsequenceIndexOptions{};
  options.window = 32;
  auto index = SubsequenceIndex::Build(walks, options);
  ASSERT_TRUE(index.ok());
  std::vector<double> wrong_length(16, 0.0);
  EXPECT_FALSE(index->RangeQuery(wrong_length, 1.0).ok());
  std::vector<double> right_length(32, 0.0);
  EXPECT_FALSE(index->RangeQuery(right_length, -1.0).ok());
}

TEST(SimilarityTest, EmptyCollection) {
  std::vector<std::vector<double>> nothing;
  SubsequenceIndexOptions options;
  options.window = 8;
  auto index = SubsequenceIndex::Build(nothing, options);
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index->num_windows(), 0u);
  std::vector<double> query(8, 0.0);
  auto matches = index->RangeQuery(query, 1.0);
  ASSERT_TRUE(matches.ok());
  EXPECT_TRUE(matches->empty());
}

TEST(GenTimeSeriesTest, RandomWalkShapeAndDeterminism) {
  gen::RandomWalkParams params;
  params.num_series = 4;
  params.length = 50;
  auto a = gen::GenerateRandomWalks(params, 3);
  auto b = gen::GenerateRandomWalks(params, 3);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);
  EXPECT_EQ(a->size(), 4u);
  EXPECT_EQ((*a)[0].size(), 50u);
  params.num_series = 0;
  EXPECT_FALSE(gen::GenerateRandomWalks(params, 1).ok());
}

TEST(GenTimeSeriesTest, PlantMotifValidation) {
  auto walks = Walks(2, 50, 8);
  std::vector<double> motif(20, 1.0);
  EXPECT_TRUE(gen::PlantMotif(&walks, 1, 10, motif, 0.0, 1).ok());
  for (size_t i = 0; i < 20; ++i) {
    EXPECT_DOUBLE_EQ(walks[1][10 + i], 1.0);
  }
  EXPECT_FALSE(gen::PlantMotif(&walks, 5, 0, motif, 0.0, 1).ok());
  EXPECT_FALSE(gen::PlantMotif(&walks, 0, 45, motif, 0.0, 1).ok());
  EXPECT_FALSE(gen::PlantMotif(&walks, 0, 0, motif, -1.0, 1).ok());
  EXPECT_FALSE(gen::PlantMotif(nullptr, 0, 0, motif, 0.0, 1).ok());
}

}  // namespace
}  // namespace dmt::tseries
